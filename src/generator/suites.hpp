/// \file suites.hpp
/// \brief The paper's dataset suites, rebuilt as generator parameter sets.
///
/// Table 1 of the paper lists 24 synthetic DCSBM graphs in six groups of
/// four; the groups cross two density regimes (E/V ≈ 1.6–2.2 vs. ≈ 20–28)
/// with three community-strength levels r, and the four variants inside a
/// group vary the degree-distribution exponent and edge budget. Table 2
/// lists 14 SuiteSparse real-world graphs. Neither dataset ships with the
/// paper (and this environment is offline), so:
///
///   - synthetic_suite() reproduces the Table-1 design at a configurable
///     scale (scale=1.0 ≈ paper size, V ≈ 200k–226k; benches default to
///     a laptop-friendly scale),
///   - realworld_surrogate_suite() builds DCSBM surrogates matched to
///     each Table-2 dataset's published V, E and a domain-appropriate
///     degree skew / community strength (see DESIGN.md §5 for the
///     substitution argument).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "generator/dcsbm.hpp"

namespace hsbp::generator {

struct SuiteEntry {
  std::string id;       ///< e.g. "S7" or "web-BerkStan"
  DcsbmParams params;   ///< generator configuration (already scaled)
  /// Paper-published size at scale 1.0, for the Table-1/2 reports.
  graph::Vertex paper_vertices = 0;
  graph::EdgeCount paper_edges = 0;
};

/// The 24-graph synthetic suite (S1..S24). `scale` multiplies V and E
/// (clamped so graphs stay valid); `seed` seeds the whole suite
/// deterministically. \pre 0 < scale <= 1.
std::vector<SuiteEntry> synthetic_suite(double scale, std::uint64_t seed);

/// The 14 real-world surrogates (rajat01..flickr). \pre 0 < scale <= 1.
std::vector<SuiteEntry> realworld_surrogate_suite(double scale,
                                                  std::uint64_t seed);

/// Convenience: generate one suite entry.
GeneratedGraph generate(const SuiteEntry& entry);

}  // namespace hsbp::generator
