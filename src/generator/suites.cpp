#include "generator/suites.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/rng.hpp"

namespace hsbp::generator {

namespace {

using graph::EdgeCount;
using graph::Vertex;

void check_scale(double scale) {
  if (!(scale > 0.0) || scale > 1.0) {
    throw std::invalid_argument("suite scale must be in (0, 1]");
  }
}

Vertex scaled_vertices(Vertex paper_v, double scale) {
  return std::max<Vertex>(64,
                          static_cast<Vertex>(std::llround(
                              static_cast<double>(paper_v) * scale)));
}

EdgeCount scaled_edges(EdgeCount paper_e, double scale, Vertex v) {
  // Keep the paper's density E/V when scaling V.
  return std::max<EdgeCount>(
      v, static_cast<EdgeCount>(std::llround(
             static_cast<double>(paper_e) * scale)));
}

/// Community count heuristic: the Graph Challenge generator grows the
/// number of planted blocks sublinearly with V (~V^0.35).
std::int32_t communities_for(Vertex v) {
  return std::max<std::int32_t>(
      4, static_cast<std::int32_t>(std::llround(
             std::pow(static_cast<double>(v), 0.35))));
}

EdgeCount max_degree_for(Vertex v, EdgeCount e) {
  const auto avg = static_cast<double>(e) / static_cast<double>(v);
  const auto cap = static_cast<EdgeCount>(v) / 4;
  return std::clamp<EdgeCount>(
      static_cast<EdgeCount>(std::llround(avg * 20.0)), 8, std::max<EdgeCount>(8, cap));
}

DcsbmParams make_params(Vertex paper_v, EdgeCount paper_e, double r,
                        double degree_exponent, double scale,
                        std::uint64_t seed) {
  DcsbmParams p;
  p.num_vertices = scaled_vertices(paper_v, scale);
  p.num_edges = scaled_edges(paper_e, scale, p.num_vertices);
  p.num_communities = communities_for(p.num_vertices);
  p.ratio_within_between = r;
  p.degree_exponent = degree_exponent;
  p.min_degree = 1;
  p.max_degree = max_degree_for(p.num_vertices, p.num_edges);
  p.community_size_exponent = 0.5;  // mildly heterogeneous sizes
  p.seed = seed;
  return p;
}

}  // namespace

std::vector<SuiteEntry> synthetic_suite(double scale, std::uint64_t seed) {
  check_scale(scale);
  util::SplitMix64 seeder(seed);

  // Table-1 design: six groups of four. Even groups are the low-density
  // regime (V ≈ 200k, E ≈ 320k–447k), odd groups the high-density regime
  // (V = 225 999, E ≈ 4.46M–6.33M). Group pairs share a community
  // strength: (S1–S8) r = 3, (S9–S16) r = 5, (S17–S24) r = 1.5 (the
  // weak-structure regime responsible for the paper's redacted graphs).
  // Variants inside a group alternate the edge budget (as in Table 1)
  // and sweep the degree exponent.
  struct GroupSpec {
    Vertex v;
    EdgeCount e[4];
    double r;
  };
  const GroupSpec groups[6] = {
      {198101, {321071, 425466, 322196, 436203}, 3.0},
      {225999, {4463267, 5864094, 4536499, 6327321}, 3.0},
      {197552, {321509, 425382, 323076, 426813}, 5.0},
      {225999, {4502604, 5891353, 4495263, 6277133}, 5.0},
      {199285, {322338, 427949, 322236, 447244}, 1.5},
      {225999, {4481133, 5896200, 4523706, 6247681}, 1.5},
  };
  const double exponents[4] = {2.1, 2.5, 2.9, 3.3};

  std::vector<SuiteEntry> suite;
  suite.reserve(24);
  int id = 1;
  for (const auto& group : groups) {
    for (int variant = 0; variant < 4; ++variant, ++id) {
      SuiteEntry entry;
      char name[16];
      std::snprintf(name, sizeof(name), "S%d", id);
      entry.id = name;
      entry.paper_vertices = group.v;
      entry.paper_edges = group.e[variant];
      entry.params = make_params(group.v, group.e[variant], group.r,
                                 exponents[variant], scale, seeder.next());
      suite.push_back(std::move(entry));
    }
  }
  return suite;
}

std::vector<SuiteEntry> realworld_surrogate_suite(double scale,
                                                  std::uint64_t seed) {
  check_scale(scale);
  util::SplitMix64 seeder(seed);

  // Table-2 datasets with published (V, E). Degree exponent and r are
  // chosen per domain: web graphs have the strongest and most
  // heterogeneous community structure; social graphs moderate; rajat01
  // (circuit) and barth5 (mesh) are near-regular; p2p-Gnutella31 is
  // deliberately structure-poor (the paper finds MDL_norm > 1 on it).
  struct RealSpec {
    const char* name;
    Vertex v;
    EdgeCount e;
    double r;
    double degree_exponent;
  };
  const RealSpec specs[14] = {
      {"rajat01", 6847, 43262, 2.0, 3.5},
      {"wiki-Vote", 7115, 103689, 2.2, 1.9},
      {"barth5", 15622, 61498, 2.0, 4.0},
      {"cit-HepTh", 27770, 352807, 2.5, 2.1},
      {"p2p-Gnutella31", 62586, 147892, 1.05, 2.4},
      {"soc-Epinions1", 75879, 508837, 2.2, 1.9},
      {"soc-Slashdot0902", 82168, 948464, 2.2, 1.9},
      {"cnr-2000", 325557, 3216152, 4.0, 1.9},
      {"amazon0505", 410236, 3356824, 3.0, 2.6},
      {"higgs-twitter", 456626, 14855842, 2.2, 1.8},
      {"Stanford-Berkeley", 683446, 7583376, 4.0, 1.9},
      {"web-BerkStan", 685230, 7600595, 4.0, 1.9},
      {"amazon-2008", 735323, 5158388, 3.0, 2.6},
      {"flickr", 820878, 9837214, 2.2, 1.8},
  };

  std::vector<SuiteEntry> suite;
  suite.reserve(14);
  for (const auto& spec : specs) {
    SuiteEntry entry;
    entry.id = spec.name;
    entry.paper_vertices = spec.v;
    entry.paper_edges = spec.e;
    entry.params = make_params(spec.v, spec.e, spec.r, spec.degree_exponent,
                               scale, seeder.next());
    suite.push_back(std::move(entry));
  }
  return suite;
}

GeneratedGraph generate(const SuiteEntry& entry) {
  GeneratedGraph g = generate_dcsbm(entry.params);
  g.name = entry.id;
  return g;
}

}  // namespace hsbp::generator
