#include "generator/dcsbm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "generator/power_law.hpp"
#include "util/rng.hpp"

namespace hsbp::generator {

namespace {

using graph::Edge;
using graph::EdgeCount;
using graph::Vertex;

void validate(const DcsbmParams& p) {
  if (p.num_vertices <= 0) {
    throw std::invalid_argument("dcsbm: num_vertices must be positive");
  }
  if (p.num_communities <= 0 || p.num_communities > p.num_vertices) {
    throw std::invalid_argument(
        "dcsbm: need 1 <= num_communities <= num_vertices");
  }
  if (p.num_edges <= 0) {
    throw std::invalid_argument("dcsbm: num_edges must be positive");
  }
  if (p.ratio_within_between <= 0.0) {
    throw std::invalid_argument("dcsbm: ratio_within_between must be > 0");
  }
  if (p.min_degree < 1 || p.max_degree < p.min_degree) {
    throw std::invalid_argument("dcsbm: need 1 <= min_degree <= max_degree");
  }
  if (p.community_size_exponent < 0.0) {
    throw std::invalid_argument("dcsbm: community_size_exponent must be >= 0");
  }
}

/// Assigns vertices to communities. Sizes are equal or power-law
/// weighted; every community receives at least one vertex.
std::vector<std::int32_t> assign_communities(const DcsbmParams& p,
                                             util::Rng& rng) {
  const auto c_count = static_cast<std::size_t>(p.num_communities);
  std::vector<double> weights(c_count);
  for (std::size_t c = 0; c < c_count; ++c) {
    weights[c] = p.community_size_exponent == 0.0
                     ? 1.0
                     : std::pow(static_cast<double>(c + 1),
                                -p.community_size_exponent);
  }

  std::vector<std::int32_t> membership(
      static_cast<std::size_t>(p.num_vertices));
  // Seed each community with one vertex so none is empty.
  std::vector<Vertex> order(static_cast<std::size_t>(p.num_vertices));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (std::size_t c = 0; c < c_count; ++c) {
    membership[static_cast<std::size_t>(order[c])] =
        static_cast<std::int32_t>(c);
  }
  for (std::size_t i = c_count; i < order.size(); ++i) {
    membership[static_cast<std::size_t>(order[i])] =
        static_cast<std::int32_t>(rng.discrete(weights));
  }
  return membership;
}

/// Cumulative-θ index for one community: draws a member ∝ θ by binary
/// search over the prefix sums.
struct CommunityIndex {
  std::vector<Vertex> members;
  std::vector<double> theta_prefix;  // inclusive prefix sums of θ
  double theta_total = 0.0;

  Vertex draw(util::Rng& rng) const noexcept {
    const double u = rng.uniform() * theta_total;
    const auto it =
        std::lower_bound(theta_prefix.begin(), theta_prefix.end(), u);
    const auto index = std::min<std::size_t>(
        static_cast<std::size_t>(it - theta_prefix.begin()),
        members.size() - 1);
    return members[index];
  }
};

}  // namespace

GeneratedGraph generate_dcsbm(const DcsbmParams& params) {
  validate(params);
  util::Rng rng(params.seed);

  GeneratedGraph result;
  result.params = params;
  result.ground_truth = assign_communities(params, rng);

  // Degree propensities. θ_out always drawn first so that the default
  // (correlated) mode consumes the same RNG stream as historical runs;
  // independent in-propensities draw extra samples only when enabled.
  PowerLawSampler degree_sampler(params.min_degree, params.max_degree,
                                 params.degree_exponent);
  std::vector<double> theta_out(static_cast<std::size_t>(params.num_vertices));
  for (double& t : theta_out) {
    t = static_cast<double>(degree_sampler.sample(rng));
  }
  std::vector<double> theta_in;
  if (params.independent_in_out_degrees) {
    theta_in.resize(theta_out.size());
    for (double& t : theta_in) {
      t = static_cast<double>(degree_sampler.sample(rng));
    }
  }
  const std::vector<double>& theta_in_ref =
      params.independent_in_out_degrees ? theta_in : theta_out;

  // Per-community member lists with θ prefix sums, one index per
  // direction (identical objects in the correlated default).
  const auto c_count = static_cast<std::size_t>(params.num_communities);
  const auto build_indexes = [&](const std::vector<double>& theta) {
    std::vector<CommunityIndex> indexes(c_count);
    for (Vertex v = 0; v < params.num_vertices; ++v) {
      indexes[static_cast<std::size_t>(
                  result.ground_truth[static_cast<std::size_t>(v)])]
          .members.push_back(v);
    }
    for (auto& community : indexes) {
      community.theta_prefix.reserve(community.members.size());
      double running = 0.0;
      for (Vertex v : community.members) {
        running += theta[static_cast<std::size_t>(v)];
        community.theta_prefix.push_back(running);
      }
      community.theta_total = running;
    }
    return indexes;
  };
  const auto out_index = build_indexes(theta_out);
  const auto in_index = params.independent_in_out_degrees
                            ? build_indexes(theta_in_ref)
                            : out_index;

  // Block-pair weights: W_ab ∝ Θout_a Θin_b with the diagonal scaled so
  // the TOTAL within:between weight ratio equals r (the paper's Table-1
  // parameter). A bare per-pair boost would be diluted across the
  // C²−C off-diagonal pairs.
  double diagonal_weight = 0.0;
  double out_total = 0.0;
  double in_total = 0.0;
  for (std::size_t a = 0; a < c_count; ++a) {
    diagonal_weight += out_index[a].theta_total * in_index[a].theta_total;
    out_total += out_index[a].theta_total;
    in_total += in_index[a].theta_total;
  }
  const double off_diagonal_weight = out_total * in_total - diagonal_weight;
  // With one community there is no "between"; keep the bare weights.
  const double kappa =
      (off_diagonal_weight > 0.0 && diagonal_weight > 0.0)
          ? params.ratio_within_between * off_diagonal_weight /
                diagonal_weight
          : 1.0;

  std::vector<double> pair_weights(c_count * c_count);
  for (std::size_t a = 0; a < c_count; ++a) {
    for (std::size_t b = 0; b < c_count; ++b) {
      const double base =
          out_index[a].theta_total * in_index[b].theta_total;
      pair_weights[a * c_count + b] = (a == b) ? base * kappa : base;
    }
  }

  // Draw edges: block pair, then degree-weighted endpoints (source from
  // the out-index, target from the in-index).
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(params.num_edges));
  for (EdgeCount e = 0; e < params.num_edges; ++e) {
    const std::size_t pair = rng.discrete(pair_weights);
    const std::size_t a = pair / c_count;
    const std::size_t b = pair % c_count;
    const Vertex source = out_index[a].draw(rng);
    const Vertex target = in_index[b].draw(rng);
    edges.emplace_back(source, target);
  }

  result.graph = graph::Graph::from_edges(params.num_vertices, edges);
  return result;
}

double realized_within_ratio(const graph::Graph& g,
                             const std::vector<std::int32_t>& membership) {
  EdgeCount within = 0;
  EdgeCount between = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex target : g.out_neighbors(v)) {
      if (membership[static_cast<std::size_t>(v)] ==
          membership[static_cast<std::size_t>(target)]) {
        ++within;
      } else {
        ++between;
      }
    }
  }
  if (between == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(within) / static_cast<double>(between);
}

}  // namespace hsbp::generator
