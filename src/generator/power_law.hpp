/// \file power_law.hpp
/// \brief Discrete truncated power-law sampling for vertex degree
/// propensities (the generator's replacement for graph-tool's degree
/// sampler).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hsbp::generator {

/// Samples integers d in [min_value, max_value] with P(d) ∝ d^(-exponent).
/// Backed by a precomputed CDF with binary-search draws, so sampling is
/// O(log(max-min)) and construction O(max-min).
class PowerLawSampler {
 public:
  /// \pre 1 <= min_value <= max_value; exponent may be any real (0 gives
  /// the uniform distribution, negatives favour large values).
  PowerLawSampler(std::int64_t min_value, std::int64_t max_value,
                  double exponent);

  std::int64_t sample(util::Rng& rng) const noexcept;

  /// Exact distribution mean (for tests and edge budgeting).
  double mean() const noexcept { return mean_; }

  std::int64_t min_value() const noexcept { return min_value_; }
  std::int64_t max_value() const noexcept { return max_value_; }

 private:
  std::int64_t min_value_;
  std::int64_t max_value_;
  std::vector<double> cdf_;  // cdf_[i] = P(d <= min_value + i)
  double mean_ = 0.0;
};

}  // namespace hsbp::generator
