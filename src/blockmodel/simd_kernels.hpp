/// \file simd_kernels.hpp
/// \brief Batched xlogx-table kernels for the ΔMDL inner loops
/// (DESIGN §13).
///
/// The ΔMDL kernels reduce to sums of xlogx_count() terms over small
/// integer counts. The callers (vertex_move_delta, merge_delta) stage
/// the counts into contiguous scratch arrays; these kernels then gather
/// from detail::xlogx_table (`vgatherqpd` on AVX2) and accumulate in
/// the canonical strided-4 order of util/simd.hpp, so every dispatch
/// level returns the same bits. Counts at or above kXlogxTableSize fall
/// back lane-wise to the live-log xlogx_count() — the identical
/// expression the table was filled with, so the fallback is also
/// bit-identical.
#pragma once

#include <cstddef>

#include "blockmodel/xlogx_table.hpp"

namespace hsbp::blockmodel::simd {

/// Σ4 [ xlogx_count(newv[i]) − xlogx_count(oldv[i]) ] — the changed-cell
/// likelihood delta of a vertex move. \pre all counts >= 0.
double xlogx_diff_sum(const Count* newv, const Count* oldv,
                      std::size_t n) noexcept;

/// Σ4 [ (xlogx_count(a[i]) − xlogx_count(b[i])) − xlogx_count(c[i]) ] —
/// the off-corner fold terms of a block merge, a = merged cell,
/// b = existing cell, c = folded cell. \pre a[i] == b[i] + c[i] and all
/// counts >= 0 (the AVX2 path range-checks only a[i], which dominates).
double merge_fold_sum(const Count* a, const Count* b, const Count* c,
                      std::size_t n) noexcept;

}  // namespace hsbp::blockmodel::simd
