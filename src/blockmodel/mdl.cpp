#include "blockmodel/mdl.hpp"

#include <omp.h>

#include <cassert>
#include <cmath>
#include <vector>

#include "blockmodel/xlogx_table.hpp"
#include "util/omp_region.hpp"

namespace hsbp::blockmodel {

double xlogx(double x) noexcept {
  assert(x >= 0.0);
  return x > 0.0 ? x * std::log(x) : 0.0;
}

double h_function(double x) noexcept {
  assert(x >= 0.0);
  return (1.0 + x) * std::log1p(x) - xlogx(x);
}

double log_likelihood(const Blockmodel& b) { return b.log_likelihood(); }

double log_likelihood_rescan(const Blockmodel& b) {
  const int threads = omp_get_max_threads();
  std::vector<LlFixed> partials(static_cast<std::size_t>(threads), 0);
  const BlockId num_blocks = b.num_blocks();
  util::omp_region([&] {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    LlFixed local = 0;
#pragma omp for schedule(static) nowait
    for (BlockId r = 0; r < num_blocks; ++r) {
      for (const auto& [col, count] : b.matrix().row(r)) {
        (void)col;
        local += xlogx_fixed(count);
      }
      local -= xlogx_fixed(b.degree_out(r));
      local -= xlogx_fixed(b.degree_in(r));
    }
    partials[tid] = local;
  });
  LlFixed sum = 0;
  for (const LlFixed partial : partials) sum += partial;
  return ll_fixed_to_double(sum);
}

double model_description_length(graph::Vertex num_vertices,
                                graph::EdgeCount num_edges,
                                BlockId num_blocks) noexcept {
  if (num_edges <= 0 || num_blocks <= 0) return 0.0;
  const double e = static_cast<double>(num_edges);
  const double c = static_cast<double>(num_blocks);
  return e * h_function(c * c / e) +
         static_cast<double>(num_vertices) * std::log(c);
}

double mdl(const Blockmodel& b, graph::Vertex num_vertices,
           graph::EdgeCount num_edges) {
  return model_description_length(num_vertices, num_edges, b.num_blocks()) -
         log_likelihood(b);
}

double null_mdl(graph::Vertex num_vertices,
                graph::EdgeCount num_edges) noexcept {
  if (num_edges <= 0) return 0.0;
  const double e = static_cast<double>(num_edges);
  // C = 1: M_11 = E, d_out = d_in = E, so L = E log(E/E²) = −E log E.
  const double likelihood = -e * std::log(e);
  return model_description_length(num_vertices, num_edges, 1) - likelihood;
}

}  // namespace hsbp::blockmodel
