#include "blockmodel/mdl.hpp"

#include <cassert>
#include <cmath>

#include "blockmodel/xlogx_table.hpp"

namespace hsbp::blockmodel {

double xlogx(double x) noexcept {
  assert(x >= 0.0);
  return x > 0.0 ? x * std::log(x) : 0.0;
}

double h_function(double x) noexcept {
  assert(x >= 0.0);
  return (1.0 + x) * std::log1p(x) - xlogx(x);
}

double log_likelihood(const Blockmodel& b) {
  double cell_term = 0.0;
  double degree_term = 0.0;
  for (BlockId r = 0; r < b.num_blocks(); ++r) {
    for (const auto& [col, count] : b.matrix().row(r)) {
      (void)col;
      cell_term += xlogx_count(count);
    }
    degree_term += xlogx_count(b.degree_out(r));
    degree_term += xlogx_count(b.degree_in(r));
  }
  return cell_term - degree_term;
}

double model_description_length(graph::Vertex num_vertices,
                                graph::EdgeCount num_edges,
                                BlockId num_blocks) noexcept {
  if (num_edges <= 0 || num_blocks <= 0) return 0.0;
  const double e = static_cast<double>(num_edges);
  const double c = static_cast<double>(num_blocks);
  return e * h_function(c * c / e) +
         static_cast<double>(num_vertices) * std::log(c);
}

double mdl(const Blockmodel& b, graph::Vertex num_vertices,
           graph::EdgeCount num_edges) {
  return model_description_length(num_vertices, num_edges, b.num_blocks()) -
         log_likelihood(b);
}

double null_mdl(graph::Vertex num_vertices,
                graph::EdgeCount num_edges) noexcept {
  if (num_edges <= 0) return 0.0;
  const double e = static_cast<double>(num_edges);
  // C = 1: M_11 = E, d_out = d_in = E, so L = E log(E/E²) = −E log E.
  const double likelihood = -e * std::log(e);
  return model_description_length(num_vertices, num_edges, 1) - likelihood;
}

}  // namespace hsbp::blockmodel
