#include "blockmodel/dense_matrix.hpp"

namespace hsbp::blockmodel {

DenseMatrix DenseMatrix::from_sparse(const DictTransposeMatrix& source) {
  DenseMatrix dense(source.size());
  for (BlockId r = 0; r < source.size(); ++r) {
    for (const auto& [col, value] : source.row(r)) {
      dense.add(r, col, value);
    }
  }
  return dense;
}

DictTransposeMatrix DenseMatrix::to_sparse() const {
  DictTransposeMatrix sparse(size_);
  for (BlockId r = 0; r < size_; ++r) {
    for (BlockId c = 0; c < size_; ++c) {
      const Count value = get(r, c);
      if (value != 0) sparse.add(r, c, value);
    }
  }
  return sparse;
}

Count DenseMatrix::row_sum(BlockId row) const noexcept {
  Count sum = 0;
  for (BlockId c = 0; c < size_; ++c) sum += get(row, c);
  return sum;
}

Count DenseMatrix::col_sum(BlockId col) const noexcept {
  Count sum = 0;
  for (BlockId r = 0; r < size_; ++r) sum += get(r, col);
  return sum;
}

std::size_t DenseMatrix::nonzeros() const noexcept {
  std::size_t count = 0;
  for (const Count value : cells_) count += (value != 0);
  return count;
}

bool DenseMatrix::equals(const DictTransposeMatrix& other) const {
  if (other.size() != size_) return false;
  for (BlockId r = 0; r < size_; ++r) {
    for (BlockId c = 0; c < size_; ++c) {
      if (get(r, c) != other.get(r, c)) return false;
    }
  }
  return true;
}

}  // namespace hsbp::blockmodel
