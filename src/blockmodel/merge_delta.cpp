#include "blockmodel/merge_delta.hpp"

#include <cassert>
#include <cstddef>

#include "blockmodel/mdl.hpp"
#include "blockmodel/simd_kernels.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "blockmodel/xlogx_table.hpp"

namespace hsbp::blockmodel {

double merge_delta_mdl(const Blockmodel& b, BlockId from, BlockId to,
                       graph::Vertex num_vertices,
                       graph::EdgeCount num_edges) {
  assert(from != to);
  const DictTransposeMatrix& m = b.matrix();

  // The off-corner fold terms — one per surviving entry of row `from`
  // then column `from` — have the shape xlogx(existing + value) −
  // xlogx(existing) − xlogx(value), with `existing` one indexed probe
  // of the `to` slice. Narrow rows take a fused scalar loop; wide rows
  // stage the three operand streams into the thread scratch's batch
  // arrays and reduce with the batched xlogx kernel (table gathers).
  // Both paths accumulate in the canonical strided-4 order with the
  // identical per-term expression, so the choice cannot change bits.
  const FlatSlice& row_from = m.row(from);
  const FlatSlice& col_from = m.col(from);
  const FlatSlice& row_to = m.row(to);
  const FlatSlice& col_to = m.col(to);

  // Below this many candidate terms the staging stores plus the
  // out-of-line kernel call cost more than the table gathers save
  // (measured on the kernel bench fixture, ~30 terms per merge).
  constexpr std::size_t kFoldBatchMin = 48;
  double folded;
  if (row_from.size() + col_from.size() < kFoldBatchMin) {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t idx = 0;
    for (const auto& [t, value] : row_from) {
      if (t == from || t == to) continue;
      const Count existing = row_to.get(t);
      lanes[idx & 3] += (xlogx_count(existing + value) -
                         xlogx_count(existing)) -
                        xlogx_count(value);
      ++idx;
    }
    for (const auto& [t, value] : col_from) {
      if (t == from || t == to) continue;
      const Count existing = col_to.get(t);
      lanes[idx & 3] += (xlogx_count(existing + value) -
                         xlogx_count(existing)) -
                        xlogx_count(value);
      ++idx;
    }
    folded = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  } else {
    MoveScratch& scratch = thread_move_scratch();
    MoveScratch::BatchBuffers& batch = scratch.batch;
    batch.fold_a.clear();
    batch.fold_b.clear();
    batch.fold_c.clear();

    for (const auto& [t, value] : row_from) {
      if (t == from || t == to) continue;
      const Count existing = row_to.get(t);
      batch.fold_a.push_back(existing + value);
      batch.fold_b.push_back(existing);
      batch.fold_c.push_back(value);
    }
    for (const auto& [t, value] : col_from) {
      if (t == from || t == to) continue;
      const Count existing = col_to.get(t);
      batch.fold_a.push_back(existing + value);
      batch.fold_b.push_back(existing);
      batch.fold_c.push_back(value);
    }
    folded =
        simd::merge_fold_sum(batch.fold_a.data(), batch.fold_b.data(),
                             batch.fold_c.data(), batch.fold_c.size());
  }

  // The four corner cells collapse into (to, to) — one scalar term,
  // added after the strided-4 fold (the order the reference mirrors).
  const Count ff = m.get(from, from);
  const Count ft = m.get(from, to);
  const Count tf = m.get(to, from);
  const Count tt = m.get(to, to);
  const double corner = xlogx_count(tt + ff + ft + tf) - xlogx_count(tt) -
                        xlogx_count(ff) - xlogx_count(ft) - xlogx_count(tf);
  const double delta_cells = folded + corner;

  // Degree terms: d(to) absorbs d(from).
  const auto merge_degrees = [](Count a, Count into) {
    return xlogx_count(into + a) - xlogx_count(into) - xlogx_count(a);
  };
  const double delta_degrees =
      merge_degrees(b.degree_out(from), b.degree_out(to)) +
      merge_degrees(b.degree_in(from), b.degree_in(to));

  const double delta_likelihood = delta_cells - delta_degrees;

  const double delta_model =
      model_description_length(num_vertices, num_edges, b.num_blocks() - 1) -
      model_description_length(num_vertices, num_edges, b.num_blocks());

  return delta_model - delta_likelihood;
}

}  // namespace hsbp::blockmodel
