#include "blockmodel/merge_delta.hpp"

#include <cassert>

#include "blockmodel/mdl.hpp"
#include "blockmodel/xlogx_table.hpp"

namespace hsbp::blockmodel {

double merge_delta_mdl(const Blockmodel& b, BlockId from, BlockId to,
                       graph::Vertex num_vertices,
                       graph::EdgeCount num_edges) {
  assert(from != to);
  const DictTransposeMatrix& m = b.matrix();

  double delta_cells = 0.0;

  // Off-corner cells of row `from` fold into row `to`.
  for (const auto& [t, value] : m.row(from)) {
    if (t == from || t == to) continue;
    const Count existing = m.get(to, t);
    delta_cells += xlogx_count(existing + value) - xlogx_count(existing) -
                   xlogx_count(value);
  }
  // Off-corner cells of column `from` fold into column `to`.
  for (const auto& [t, value] : m.col(from)) {
    if (t == from || t == to) continue;
    const Count existing = m.get(t, to);
    delta_cells += xlogx_count(existing + value) - xlogx_count(existing) -
                   xlogx_count(value);
  }
  // The four corner cells collapse into (to, to).
  const Count ff = m.get(from, from);
  const Count ft = m.get(from, to);
  const Count tf = m.get(to, from);
  const Count tt = m.get(to, to);
  delta_cells += xlogx_count(tt + ff + ft + tf) - xlogx_count(tt) -
                 xlogx_count(ff) - xlogx_count(ft) - xlogx_count(tf);

  // Degree terms: d(to) absorbs d(from).
  const auto merge_degrees = [](Count a, Count into) {
    return xlogx_count(into + a) - xlogx_count(into) - xlogx_count(a);
  };
  const double delta_degrees =
      merge_degrees(b.degree_out(from), b.degree_out(to)) +
      merge_degrees(b.degree_in(from), b.degree_in(to));

  const double delta_likelihood = delta_cells - delta_degrees;

  const double delta_model =
      model_description_length(num_vertices, num_edges, b.num_blocks() - 1) -
      model_description_length(num_vertices, num_edges, b.num_blocks());

  return delta_model - delta_likelihood;
}

}  // namespace hsbp::blockmodel
