/// \file mdl.hpp
/// \brief Minimum description length of a DCSBM fit (paper Eq. 1–2).
///
///   L(G|B) = Σ_{r,s} M_rs log( M_rs / (d_out_r · d_in_s) )
///   MDL    = E·h(C²/E) + V·log C − L(G|B),
///   h(x)   = (1+x)·log(1+x) − x·log x.
///
/// For fast ΔMDL we use the decomposition
///   L = Σ_{r,s} M_rs log M_rs − Σ_r d_out_r log d_out_r
///       − Σ_s d_in_s log d_in_s,
/// so a vertex move touches only the O(deg) changed cells plus four
/// degree entries, and a merge one row + one column.
#pragma once

#include "blockmodel/blockmodel.hpp"
#include "graph/graph.hpp"

namespace hsbp::blockmodel {

/// x·log x with the conventional limit 0·log 0 = 0. \pre x >= 0.
double xlogx(double x) noexcept;

/// The model-complexity weight h(x) of Eq. 2.
double h_function(double x) noexcept;

/// Log-likelihood term L(G|B) (Eq. 1) of the current blockmodel state.
/// O(1): decoded from the fixed-point sums the Blockmodel maintains on
/// every move_vertex/rebuild (DESIGN §11).
double log_likelihood(const Blockmodel& b);

/// L(G|B) recomputed from scratch by an O(nnz) OpenMP sweep over the
/// matrix rows, accumulating the same fixed-point terms the maintained
/// path uses. Exactly equal to log_likelihood() — integer partial sums
/// make the reduction order-independent — so tests can assert the
/// incremental bookkeeping with ==, not a tolerance.
double log_likelihood_rescan(const Blockmodel& b);

/// Model description length E·h(C²/E) + V·log C for C blocks.
double model_description_length(graph::Vertex num_vertices,
                                graph::EdgeCount num_edges,
                                BlockId num_blocks) noexcept;

/// Full MDL (Eq. 2) of the blockmodel over the given graph size.
double mdl(const Blockmodel& b, graph::Vertex num_vertices,
           graph::EdgeCount num_edges);

/// MDL of the structure-less null blockmodel (every vertex in one
/// community) — the normalizer for MDL_norm (paper §4.2).
double null_mdl(graph::Vertex num_vertices,
                graph::EdgeCount num_edges) noexcept;

}  // namespace hsbp::blockmodel
