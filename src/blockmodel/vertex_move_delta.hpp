/// \file vertex_move_delta.hpp
/// \brief O(deg(v)) ΔMDL computation for a proposed vertex move — the
/// inner kernel of every MCMC phase (paper Algs. 2–4: "compute AMDL for
/// proposed move") — plus the MoveScratch arena that makes it
/// allocation-free.
///
/// Uses the decomposition L = Σ xlogx(M_rs) − Σ xlogx(d_out) − Σ
/// xlogx(d_in): a move r→s changes only cells in rows/columns r and s
/// whose partner block is a neighbor block of v, plus the four degree
/// entries. The model-complexity term of the MDL is unchanged because
/// vertex moves never change the number of blocks (moves that would
/// empty a block are rejected upstream).
///
/// Two API layers:
///   - *_into kernels writing into a caller-owned MoveScratch — the hot
///     path. No heap allocation after warm-up, O(k) dedup through
///     persistent per-block stamp indexes instead of linear rescans.
///   - by-value wrappers (gather_neighbor_blocks, vertex_move_delta)
///     retained for cold paths and tests; they run the same kernels
///     through a thread-local scratch and copy the result out.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "util/simd.hpp"

namespace hsbp::blockmodel {

/// Edge counts from a vertex to each adjacent block, gathered under a
/// given membership vector. The membership is passed explicitly because
/// A-SBP evaluates moves against a *stale* assignment (paper Alg. 3).
struct NeighborBlockCounts {
  /// Distinct (block, multiplicity) for out-edges v→u, u != v.
  std::vector<std::pair<BlockId, Count>> out;
  /// Distinct (block, multiplicity) for in-edges u→v, u != v.
  std::vector<std::pair<BlockId, Count>> in;
  Count self_loops = 0;   ///< multiplicity of edge (v, v)
  Count degree_out = 0;   ///< out-degree of v including self-loops
  Count degree_in = 0;    ///< in-degree of v including self-loops

  Count degree_total() const noexcept { return degree_out + degree_in; }
};

/// A changed cell of M: (row, col, additive delta).
struct CellDelta {
  BlockId row;
  BlockId col;
  Count delta;
};

/// Result of evaluating a move. `cell_deltas` lists every changed cell
/// exactly once (consumed by the Hastings correction, which needs
/// post-move matrix values without applying the move).
struct MoveDelta {
  double delta_mdl = 0.0;
  std::vector<CellDelta> cell_deltas;

  /// Post-move value of cell (row, col) given the pre-move blockmodel.
  /// Linear scan over the cell list; the hot path uses move_new_value()
  /// on a MoveScratch instead, which answers in O(1).
  Count new_value(const Blockmodel& b, BlockId row, BlockId col) const;
};

/// Per-thread reusable workspace for the propose/ΔMDL/accept step.
/// Holds the gather and cell-delta buffers (cleared, never freed, so
/// steady-state passes allocate nothing) and two persistent per-block
/// stamp indexes that turn the gather dedup into one stamped increment
/// per neighbor: a block's first sighting records its position in the
/// nb list, later sightings bump the count in place. Stamps are
/// invalidated in O(1) by bumping the epoch at gather entry.
///
/// The stamp indexes double as the move-description index: after a
/// gather, out_count(t)/in_count(t) answer the vertex's edge
/// multiplicity towards block t in O(1), which is exactly the cell
/// delta of the move for any non-corner cell (see move_new_value).
/// They stay valid until the next gather, provided nb itself is not
/// mutated in between (no caller does).
class MoveScratch {
 public:
  NeighborBlockCounts nb;  ///< gather target (buffers reused)
  MoveDelta delta;         ///< ΔMDL target (cell buffer reused)

  /// Edge multiplicity from the gathered vertex to block t (out / in
  /// direction); 0 for blocks outside the neighbor lists. Valid from
  /// the end of a gather until the next gather on this scratch.
  Count out_count(BlockId block) const noexcept {
    const auto i = static_cast<std::size_t>(block);
    return i < stamp_out_.size() && stamp_out_[i] == epoch_
               ? nb.out[idx_out_[i]].second
               : 0;
  }
  Count in_count(BlockId block) const noexcept {
    const auto i = static_cast<std::size_t>(block);
    return i < stamp_in_.size() && stamp_in_[i] == epoch_
               ? nb.in[idx_in_[i]].second
               : 0;
  }

  /// Gather internals: begin_gather() invalidates the previous gather's
  /// stamps in O(1); add_out/add_in accumulate one neighbor sighting
  /// (append on first sighting, in-place increment after).
  void begin_gather() noexcept { ++epoch_; }
  void add_out(BlockId block) {
    const auto i = static_cast<std::size_t>(block);
    if (i >= stamp_out_.size()) grow(i + 1);
    if (stamp_out_[i] == epoch_) {
      ++nb.out[idx_out_[i]].second;
    } else {
      stamp_out_[i] = epoch_;
      idx_out_[i] = nb.out.size();
      nb.out.emplace_back(block, 1);
    }
  }
  void add_in(BlockId block) {
    const auto i = static_cast<std::size_t>(block);
    if (i >= stamp_in_.size()) grow(i + 1);
    if (stamp_in_[i] == epoch_) {
      ++nb.in[idx_in_[i]].second;
    } else {
      stamp_in_[i] = epoch_;
      idx_in_[i] = nb.in.size();
      nb.in.emplace_back(block, 1);
    }
  }

  /// Endpoints of the move the `delta` buffer currently describes (set
  /// by vertex_move_delta_into; consumed by move_new_value), and the
  /// deltas of the four corner cells {from,to}×{from,to} — the only
  /// cells where out-, in- and self-loop contributions can overlap.
  BlockId move_from() const noexcept { return move_from_; }
  BlockId move_to() const noexcept { return move_to_; }
  Count corner_ff() const noexcept { return corner_ff_; }
  Count corner_tf() const noexcept { return corner_tf_; }
  Count corner_ft() const noexcept { return corner_ft_; }
  Count corner_tt() const noexcept { return corner_tt_; }
  void set_move(BlockId from, BlockId to) noexcept {
    move_from_ = from;
    move_to_ = to;
  }
  void set_corners(Count ff, Count tf, Count ft, Count tt) noexcept {
    corner_ff_ = ff;
    corner_tf_ = tf;
    corner_ft_ = ft;
    corner_tt_ = tt;
  }

  /// Staging arrays for the batched (SIMD) kernel paths: the ΔMDL /
  /// Hastings / merge kernels compact their per-term operands here,
  /// then hand the contiguous arrays to the util::simd /
  /// blockmodel::simd reductions. Contents are transient per kernel
  /// call; capacity is retained forever, like the other scratch
  /// buffers.
  struct BatchBuffers {
    std::vector<Count> old_vals;       ///< pre-move cell values, per cell
    std::vector<Count> new_vals;       ///< post-move cell values (nonzero Δ)
    std::vector<Count> fold_a;         ///< merge: merged counts
    std::vector<Count> fold_b;         ///< merge: existing counts
    std::vector<Count> fold_c;         ///< merge: folded counts
    std::vector<double> kd;            ///< Hastings: neighbor multiplicity
    std::vector<double> fwd_num;       ///< Hastings: forward numerators
    std::vector<double> fwd_den;       ///< Hastings: forward denominators
    std::vector<double> bwd_num;       ///< Hastings: backward numerators
    std::vector<double> bwd_den;       ///< Hastings: backward denominators
    std::vector<std::int32_t> blocks;  ///< gathered neighbor memberships
  };
  BatchBuffers batch;

 private:
  void grow(std::size_t needed) {
    stamp_out_.resize(needed, 0);
    stamp_in_.resize(needed, 0);
    idx_out_.resize(needed, 0);
    idx_in_.resize(needed, 0);
  }

  // Stamps are 64-bit so the epoch never wraps around into a stale
  // match; fresh entries hold 0 and the epoch starts at 1. Stamp and
  // list-position arrays are kept separate so a dedup hit issues the
  // two loads independently.
  std::vector<std::uint64_t> stamp_out_;
  std::vector<std::uint64_t> stamp_in_;
  std::vector<std::size_t> idx_out_;
  std::vector<std::size_t> idx_in_;
  std::uint64_t epoch_ = 1;
  BlockId move_from_ = -1;
  BlockId move_to_ = -1;
  Count corner_ff_ = 0;
  Count corner_tf_ = 0;
  Count corner_ft_ = 0;
  Count corner_tt_ = 0;
};

/// The calling thread's scratch arena (one per OpenMP thread, lives for
/// the thread's lifetime). Scratch state never influences results — the
/// epoch discipline fully isolates consecutive uses — so sharing one
/// arena across phases is safe.
MoveScratch& thread_move_scratch() noexcept;

/// Membership view over a plain contiguous int32 label array. Gather
/// loops recognize this type (it is not an opaque callable) and batch
/// the base[u] lookups through util::simd::gather_i32 (`vpgatherdd`).
/// The serial phases wrap the blockmodel's own assignment; the async
/// phase wraps its shared atomic vector outside TSan builds, where
/// relaxed atomic loads and plain loads are the same instruction.
struct FlatMembershipView {
  const std::int32_t* base = nullptr;
  BlockId operator()(graph::Vertex u) const noexcept {
    return base[static_cast<std::size_t>(u)];
  }
};

/// Gathers neighbor-block counts into scratch.nb, reading memberships
/// through `view`, a callable Vertex → BlockId. This is the A-SBP hook:
/// the async phase passes a view over an atomically-updated shared
/// membership vector, the serial phases a view over the blockmodel's
/// own assignment. Dedup is O(deg(v)) via the per-block stamp indexes,
/// which keep the counts readable (out_count/in_count) until the
/// next gather on the same scratch. When `view`
/// is a FlatMembershipView and the vertex degree is large, the
/// membership lookups for each neighbor span are batch-gathered into
/// scratch.batch.blocks first; the stamping loop reads the same block
/// values either way, so the nb output is identical.
template <typename View>
void gather_neighbor_blocks_into(const graph::GraphView& graph, const View& view,
                                 graph::Vertex v, MoveScratch& scratch) {
  constexpr bool kFlat = std::is_same_v<View, FlatMembershipView>;
  NeighborBlockCounts& nb = scratch.nb;
  nb.out.clear();
  nb.in.clear();
  nb.self_loops = 0;
  nb.degree_out = graph.out_degree(v);
  nb.degree_in = graph.in_degree(v);

  scratch.begin_gather();
  const std::span<const graph::Vertex> out = graph.out_neighbors(v);
  const std::span<const graph::Vertex> in = graph.in_neighbors(v);
  [[maybe_unused]] const std::int32_t* gathered = nullptr;
  if constexpr (kFlat) {
    // Batch the membership loads only for high-degree vertices: below
    // this the two gather calls cost more than they save (the scalar
    // loads hit L1 and overlap with the counting work), measured on
    // the bench fixture at mean degree ~10.
    constexpr std::size_t kGatherBatchMin = 64;
    if (out.size() + in.size() >= kGatherBatchMin) {
      auto& buf = scratch.batch.blocks;
      if (buf.size() < out.size() + in.size()) {
        buf.resize(out.size() + in.size());
      }
      util::simd::gather_i32(view.base, out.data(), out.size(), buf.data());
      util::simd::gather_i32(view.base, in.data(), in.size(),
                             buf.data() + out.size());
      gathered = buf.data();
    }
  }

  for (std::size_t j = 0; j < out.size(); ++j) {
    const graph::Vertex u = out[j];
    if (u == v) {
      ++nb.self_loops;
      continue;
    }
    BlockId block;
    if constexpr (kFlat) {
      block = gathered != nullptr ? gathered[j] : view(u);
    } else {
      block = view(u);
    }
    scratch.add_out(block);
  }
  for (std::size_t j = 0; j < in.size(); ++j) {
    const graph::Vertex u = in[j];
    if (u == v) continue;  // counted once via the out pass
    BlockId block;
    if constexpr (kFlat) {
      block = gathered != nullptr ? gathered[out.size() + j] : view(u);
    } else {
      block = view(u);
    }
    scratch.add_in(block);
  }
}

/// ΔMDL of moving v from `from` to `to`, written into scratch.delta
/// (plus the corner deltas, which move_new_value() reads afterwards).
/// `nb` is usually scratch.nb (aliasing is fine — it is only read).
/// \pre from != to; `nb` gathered under the same assignment the
/// blockmodel's M corresponds to, by a gather on this same scratch
/// (move_new_value and the batched Hastings correction answer
/// non-corner cell deltas from the scratch's count accumulators).
void vertex_move_delta_into(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb,
                            MoveScratch& scratch);

/// Post-move value of cell (row, col) in O(1): a cell's delta is fully
/// determined by which of row/col equal from/to, the gather's count
/// accumulators, and the corner deltas left by vertex_move_delta_into.
Count move_new_value(const Blockmodel& b, const MoveScratch& scratch,
                     BlockId row, BlockId col) noexcept;

/// By-value wrapper over gather_neighbor_blocks_into (thread scratch).
template <typename View>
NeighborBlockCounts gather_neighbor_blocks_view(const graph::GraphView& graph,
                                                const View& view,
                                                graph::Vertex v) {
  MoveScratch& scratch = thread_move_scratch();
  gather_neighbor_blocks_into(graph, view, v, scratch);
  return scratch.nb;
}

NeighborBlockCounts gather_neighbor_blocks(
    const graph::GraphView& graph, std::span<const std::int32_t> assignment,
    graph::Vertex v);

/// By-value wrapper over vertex_move_delta_into (thread scratch). ΔMDL
/// of moving v from `from` to `to`. \pre from != to; `nb` gathered
/// under the same assignment the blockmodel's M corresponds to.
MoveDelta vertex_move_delta(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb);

}  // namespace hsbp::blockmodel
