/// \file vertex_move_delta.hpp
/// \brief O(deg(v)) ΔMDL computation for a proposed vertex move — the
/// inner kernel of every MCMC phase (paper Algs. 2–4: "compute AMDL for
/// proposed move") — plus the MoveScratch arena that makes it
/// allocation-free.
///
/// Uses the decomposition L = Σ xlogx(M_rs) − Σ xlogx(d_out) − Σ
/// xlogx(d_in): a move r→s changes only cells in rows/columns r and s
/// whose partner block is a neighbor block of v, plus the four degree
/// entries. The model-complexity term of the MDL is unchanged because
/// vertex moves never change the number of blocks (moves that would
/// empty a block are rejected upstream).
///
/// Two API layers:
///   - *_into kernels writing into a caller-owned MoveScratch — the hot
///     path. No heap allocation after warm-up, O(k) dedup through an
///     epoch-stamped block→slot index instead of linear rescans.
///   - by-value wrappers (gather_neighbor_blocks, vertex_move_delta)
///     retained for cold paths and tests; they run the same kernels
///     through a thread-local scratch and copy the result out.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "blockmodel/blockmodel.hpp"

namespace hsbp::blockmodel {

/// Edge counts from a vertex to each adjacent block, gathered under a
/// given membership vector. The membership is passed explicitly because
/// A-SBP evaluates moves against a *stale* assignment (paper Alg. 3).
struct NeighborBlockCounts {
  /// Distinct (block, multiplicity) for out-edges v→u, u != v.
  std::vector<std::pair<BlockId, Count>> out;
  /// Distinct (block, multiplicity) for in-edges u→v, u != v.
  std::vector<std::pair<BlockId, Count>> in;
  Count self_loops = 0;   ///< multiplicity of edge (v, v)
  Count degree_out = 0;   ///< out-degree of v including self-loops
  Count degree_in = 0;    ///< in-degree of v including self-loops

  Count degree_total() const noexcept { return degree_out + degree_in; }
};

/// A changed cell of M: (row, col, additive delta).
struct CellDelta {
  BlockId row;
  BlockId col;
  Count delta;
};

/// Result of evaluating a move. `cell_deltas` lists every changed cell
/// exactly once (consumed by the Hastings correction, which needs
/// post-move matrix values without applying the move).
struct MoveDelta {
  double delta_mdl = 0.0;
  std::vector<CellDelta> cell_deltas;

  /// Post-move value of cell (row, col) given the pre-move blockmodel.
  /// Linear scan over the cell list; the hot path uses move_new_value()
  /// on a MoveScratch instead, which answers in O(1).
  Count new_value(const Blockmodel& b, BlockId row, BlockId col) const;
};

/// Per-thread reusable workspace for the propose/ΔMDL/accept step.
/// Holds the gather and cell-delta buffers (cleared, never freed, so
/// steady-state passes allocate nothing) and an epoch-stamped
/// block→slot index that turns the O(k²) linear-scan dedups of the
/// gather and ΔMDL kernels into O(k) stamping.
///
/// The index has four lanes per block, one per cell shape a move r→s
/// can touch — (r,t), (s,t), (t,r), (t,s) — so any changed cell maps to
/// a unique (lane, t) pair (rows/cols outside {r, s} never change).
/// Bumping the epoch invalidates all stamps in O(1); the backing arrays
/// grow to the largest block id seen and are then reused forever.
class MoveScratch {
 public:
  NeighborBlockCounts nb;  ///< gather target (buffers reused)
  MoveDelta delta;         ///< ΔMDL target (cell buffer reused)

  /// Lanes of the stamp index; see cell-shape table above.
  enum Lane : int { kRowFrom = 0, kRowTo = 1, kColFrom = 2, kColTo = 3 };

  /// Invalidates every stamp (O(1) except on epoch wrap).
  void begin_epoch() noexcept {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Slot cell for (block, lane) under the current epoch; freshly
  /// stamped blocks start with all four lanes at -1 (empty). Grows the
  /// backing arrays on first sight of a larger block id.
  std::int32_t& slot(BlockId block, int lane) noexcept {
    const auto i = static_cast<std::size_t>(block);
    if (i >= stamps_.size()) grow(i + 1);
    if (stamps_[i] != epoch_) {
      stamps_[i] = epoch_;
      slots_[i] = {-1, -1, -1, -1};
    }
    return slots_[i][static_cast<std::size_t>(lane)];
  }

  /// Read-only slot lookup: -1 if the block was never stamped this
  /// epoch (or is out of range).
  std::int32_t slot_or_empty(BlockId block, int lane) const noexcept {
    const auto i = static_cast<std::size_t>(block);
    if (i >= stamps_.size() || stamps_[i] != epoch_) return -1;
    return slots_[i][static_cast<std::size_t>(lane)];
  }

  /// Endpoints of the move the `delta` buffer currently describes (set
  /// by vertex_move_delta_into; consumed by move_new_value).
  BlockId move_from() const noexcept { return move_from_; }
  BlockId move_to() const noexcept { return move_to_; }
  void set_move(BlockId from, BlockId to) noexcept {
    move_from_ = from;
    move_to_ = to;
  }

 private:
  void grow(std::size_t needed) {
    stamps_.resize(needed, 0u);
    slots_.resize(needed);
  }

  std::vector<std::uint32_t> stamps_;
  std::vector<std::array<std::int32_t, 4>> slots_;
  std::uint32_t epoch_ = 0;
  BlockId move_from_ = -1;
  BlockId move_to_ = -1;
};

/// The calling thread's scratch arena (one per OpenMP thread, lives for
/// the thread's lifetime). Scratch state never influences results — the
/// epoch discipline fully isolates consecutive uses — so sharing one
/// arena across phases is safe.
MoveScratch& thread_move_scratch() noexcept;

/// Gathers neighbor-block counts into scratch.nb, reading memberships
/// through `view`, a callable Vertex → BlockId. This is the A-SBP hook:
/// the async phase passes a view over an atomically-updated shared
/// membership vector, the serial phases a view over the blockmodel's
/// own assignment. Dedup is O(deg(v)) via the stamp index.
template <typename View>
void gather_neighbor_blocks_into(const graph::Graph& graph, const View& view,
                                 graph::Vertex v, MoveScratch& scratch) {
  NeighborBlockCounts& nb = scratch.nb;
  nb.out.clear();
  nb.in.clear();
  nb.self_loops = 0;
  nb.degree_out = graph.out_degree(v);
  nb.degree_in = graph.in_degree(v);

  scratch.begin_epoch();
  for (const graph::Vertex u : graph.out_neighbors(v)) {
    if (u == v) {
      ++nb.self_loops;
      continue;
    }
    const BlockId block = view(u);
    std::int32_t& s = scratch.slot(block, MoveScratch::kRowFrom);
    if (s < 0) {
      s = static_cast<std::int32_t>(nb.out.size());
      nb.out.emplace_back(block, 1);
    } else {
      ++nb.out[static_cast<std::size_t>(s)].second;
    }
  }
  for (const graph::Vertex u : graph.in_neighbors(v)) {
    if (u == v) continue;  // counted once via the out pass
    const BlockId block = view(u);
    std::int32_t& s = scratch.slot(block, MoveScratch::kRowTo);
    if (s < 0) {
      s = static_cast<std::int32_t>(nb.in.size());
      nb.in.emplace_back(block, 1);
    } else {
      ++nb.in[static_cast<std::size_t>(s)].second;
    }
  }
}

/// ΔMDL of moving v from `from` to `to`, written into scratch.delta
/// (and the stamp index, which move_new_value() reads afterwards).
/// `nb` is usually scratch.nb (aliasing is fine — it is only read).
/// \pre from != to; `nb` gathered under the same assignment the
/// blockmodel's M corresponds to.
void vertex_move_delta_into(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb,
                            MoveScratch& scratch);

/// Post-move value of cell (row, col) in O(1), using the stamp index
/// left by the latest vertex_move_delta_into on this scratch.
Count move_new_value(const Blockmodel& b, const MoveScratch& scratch,
                     BlockId row, BlockId col) noexcept;

/// By-value wrapper over gather_neighbor_blocks_into (thread scratch).
template <typename View>
NeighborBlockCounts gather_neighbor_blocks_view(const graph::Graph& graph,
                                                const View& view,
                                                graph::Vertex v) {
  MoveScratch& scratch = thread_move_scratch();
  gather_neighbor_blocks_into(graph, view, v, scratch);
  return scratch.nb;
}

NeighborBlockCounts gather_neighbor_blocks(
    const graph::Graph& graph, std::span<const std::int32_t> assignment,
    graph::Vertex v);

/// By-value wrapper over vertex_move_delta_into (thread scratch). ΔMDL
/// of moving v from `from` to `to`. \pre from != to; `nb` gathered
/// under the same assignment the blockmodel's M corresponds to.
MoveDelta vertex_move_delta(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb);

}  // namespace hsbp::blockmodel
