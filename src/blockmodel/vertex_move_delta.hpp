/// \file vertex_move_delta.hpp
/// \brief O(deg(v)) ΔMDL computation for a proposed vertex move — the
/// inner kernel of every MCMC phase (paper Algs. 2–4: "compute AMDL for
/// proposed move").
///
/// Uses the decomposition L = Σ xlogx(M_rs) − Σ xlogx(d_out) − Σ
/// xlogx(d_in): a move r→s changes only cells in rows/columns r and s
/// whose partner block is a neighbor block of v, plus the four degree
/// entries. The model-complexity term of the MDL is unchanged because
/// vertex moves never change the number of blocks (moves that would
/// empty a block are rejected upstream).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "blockmodel/blockmodel.hpp"

namespace hsbp::blockmodel {

/// Edge counts from a vertex to each adjacent block, gathered under a
/// given membership vector. The membership is passed explicitly because
/// A-SBP evaluates moves against a *stale* assignment (paper Alg. 3).
struct NeighborBlockCounts {
  /// Distinct (block, multiplicity) for out-edges v→u, u != v.
  std::vector<std::pair<BlockId, Count>> out;
  /// Distinct (block, multiplicity) for in-edges u→v, u != v.
  std::vector<std::pair<BlockId, Count>> in;
  Count self_loops = 0;   ///< multiplicity of edge (v, v)
  Count degree_out = 0;   ///< out-degree of v including self-loops
  Count degree_in = 0;    ///< in-degree of v including self-loops

  Count degree_total() const noexcept { return degree_out + degree_in; }
};

/// Gathers neighbor-block counts reading memberships through `view`,
/// a callable Vertex → BlockId. This is the A-SBP hook: the async phase
/// passes a view over an atomically-updated shared membership vector,
/// the serial phases a view over the blockmodel's own assignment.
template <typename View>
NeighborBlockCounts gather_neighbor_blocks_view(const graph::Graph& graph,
                                                const View& view,
                                                graph::Vertex v) {
  const auto accumulate = [](std::vector<std::pair<BlockId, Count>>& counts,
                             BlockId block) {
    for (auto& [b, c] : counts) {
      if (b == block) {
        ++c;
        return;
      }
    }
    counts.emplace_back(block, 1);
  };

  NeighborBlockCounts nb;
  nb.degree_out = graph.out_degree(v);
  nb.degree_in = graph.in_degree(v);
  nb.out.reserve(8);
  nb.in.reserve(8);
  for (const graph::Vertex u : graph.out_neighbors(v)) {
    if (u == v) {
      ++nb.self_loops;
      continue;
    }
    accumulate(nb.out, view(u));
  }
  for (const graph::Vertex u : graph.in_neighbors(v)) {
    if (u == v) continue;  // counted once via the out pass
    accumulate(nb.in, view(u));
  }
  return nb;
}

NeighborBlockCounts gather_neighbor_blocks(
    const graph::Graph& graph, std::span<const std::int32_t> assignment,
    graph::Vertex v);

/// A changed cell of M: (row, col, additive delta).
struct CellDelta {
  BlockId row;
  BlockId col;
  Count delta;
};

/// Result of evaluating a move. `cell_deltas` lists every changed cell
/// exactly once (consumed by the Hastings correction, which needs
/// post-move matrix values without applying the move).
struct MoveDelta {
  double delta_mdl = 0.0;
  std::vector<CellDelta> cell_deltas;

  /// Post-move value of cell (row, col) given the pre-move blockmodel.
  Count new_value(const Blockmodel& b, BlockId row, BlockId col) const;
};

/// ΔMDL of moving v from `from` to `to`. \pre from != to; `nb` gathered
/// under the same assignment the blockmodel's M corresponds to.
MoveDelta vertex_move_delta(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb);

}  // namespace hsbp::blockmodel
