/// \file dense_matrix.hpp
/// \brief Dense C×C edge-count matrix — the alternative backend the
/// paper's future-work discussion motivates ("data structures that are
/// more suited to repeated reconstruction").
///
/// DictTransposeMatrix wins when C is huge (the early iterations, where
/// C starts at V), but once the golden search has contracted to a few
/// hundred blocks a flat array rebuilds with perfect locality and no
/// hashing. This class implements the same cell-level API so the two
/// can be compared head-to-head (bench/bm_kernels) and swapped in
/// future blockmodel work; conversion helpers bridge the two.
#pragma once

#include <cstdint>
#include <vector>

#include "blockmodel/dict_transpose_matrix.hpp"

namespace hsbp::blockmodel {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(BlockId size)
      : size_(size),
        cells_(static_cast<std::size_t>(size) *
               static_cast<std::size_t>(size)) {}

  /// Materializes a sparse matrix densely. \pre source fits in memory
  /// (C² cells).
  static DenseMatrix from_sparse(const DictTransposeMatrix& source);

  /// Converts back to the sparse representation (zero cells dropped).
  DictTransposeMatrix to_sparse() const;

  BlockId size() const noexcept { return size_; }

  Count get(BlockId row, BlockId col) const noexcept {
    return cells_[index(row, col)];
  }

  void add(BlockId row, BlockId col, Count delta) noexcept {
    cells_[index(row, col)] += delta;
    total_ += delta;
  }

  Count total() const noexcept { return total_; }

  /// Row/column sums (block out-/in-degrees when the matrix holds the
  /// full blockmodel).
  Count row_sum(BlockId row) const noexcept;
  Count col_sum(BlockId col) const noexcept;

  std::size_t nonzeros() const noexcept;

  /// Equality against a sparse matrix, for tests.
  bool equals(const DictTransposeMatrix& other) const;

 private:
  std::size_t index(BlockId row, BlockId col) const noexcept {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(size_) +
           static_cast<std::size_t>(col);
  }

  BlockId size_ = 0;
  std::vector<Count> cells_;
  Count total_ = 0;
};

}  // namespace hsbp::blockmodel
