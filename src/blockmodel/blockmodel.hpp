/// \file blockmodel.hpp
/// \brief The degree-corrected stochastic blockmodel state fitted by SBP.
///
/// Holds, for a fixed graph and a membership vector b : V → [0, C):
///   - M, the C×C inter-block edge-count matrix (DictTransposeMatrix),
///   - block degree totals d_out, d_in, d = d_out + d_in,
///   - block sizes (vertex counts).
///
/// Two update paths mirror the paper's algorithms:
///   - move_vertex(): in-place O(deg(v)) update, used by serial
///     Metropolis-Hastings (Alg. 2), H-SBP's synchronous pass (Alg. 4),
///     and the post-pass move-log delta application (DESIGN §11);
///   - from_assignment() / rebuild(): full reconstruction from a
///     membership vector via a row/column-owner-sharded parallel merge,
///     used at initialization, merge boundaries, and the adaptive
///     fallback when a pass moved too much degree mass for deltas to win.
///
/// Both paths also maintain the log-likelihood term of the MDL as a
/// pair of order-independent fixed-point sums (Σ xlogx(M_rs) and
/// Σ xlogx(d_out) + xlogx(d_in), see xlogx_table.hpp), so mdl() is O(1)
/// and bit-identical no matter which path produced the state.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "blockmodel/dict_transpose_matrix.hpp"
#include "blockmodel/xlogx_table.hpp"
#include "graph/view.hpp"

namespace hsbp::blockmodel {

class Blockmodel {
 public:
  Blockmodel() = default;

  /// Builds the blockmodel of `graph` under `assignment` with blocks
  /// [0, num_blocks). OpenMP-parallel over vertices.
  /// \throws std::invalid_argument if assignment size != V or a label is
  /// outside [0, num_blocks).
  static Blockmodel from_assignment(const graph::GraphView& graph,
                                    std::span<const std::int32_t> assignment,
                                    BlockId num_blocks);

  /// from_assignment with bounded graph residency, for the out-of-core
  /// driver: the edge scan runs over `chunk_vertices`-sized vertex
  /// ranges with `release` invoked between ranges (pointed at
  /// MmapGraph::evict it caps how much of a mapped CSR stays resident).
  /// The accumulation is integer counts keyed by block pair, so the
  /// result equals from_assignment exactly.
  static Blockmodel from_assignment_chunked(
      const graph::GraphView& graph,
      std::span<const std::int32_t> assignment, BlockId num_blocks,
      graph::Vertex chunk_vertices, const std::function<void()>& release);

  /// Identity partition: every vertex its own block (SBP's start state).
  static Blockmodel identity(const graph::GraphView& graph);

  BlockId num_blocks() const noexcept { return num_blocks_; }
  const std::vector<std::int32_t>& assignment() const noexcept {
    return assignment_;
  }
  std::int32_t block_of(graph::Vertex v) const noexcept {
    return assignment_[static_cast<std::size_t>(v)];
  }

  const DictTransposeMatrix& matrix() const noexcept { return m_; }

  Count degree_out(BlockId b) const noexcept {
    return d_out_[static_cast<std::size_t>(b)];
  }
  Count degree_in(BlockId b) const noexcept {
    return d_in_[static_cast<std::size_t>(b)];
  }
  Count degree_total(BlockId b) const noexcept {
    return degree_out(b) + degree_in(b);
  }
  std::int32_t block_size(BlockId b) const noexcept {
    return block_sizes_[static_cast<std::size_t>(b)];
  }

  /// Moves vertex v to block `to`, updating M, degrees and sizes in
  /// place in O(deg(v)). No-op if v is already in `to`.
  void move_vertex(const graph::GraphView& graph, graph::Vertex v, BlockId to);

  /// Replaces the membership vector and reconstructs M/degrees/sizes
  /// (OpenMP-parallel). Number of blocks is unchanged.
  void rebuild(const graph::GraphView& graph,
               std::span<const std::int32_t> assignment);

  /// Deep-copies the membership vector (the A-SBP working copy).
  std::vector<std::int32_t> copy_assignment() const { return assignment_; }

  /// Log-likelihood term L(G|B) (mdl.hpp Eq. 1) decoded from the
  /// incrementally maintained fixed-point sums — O(1). Exactly equal to
  /// an O(nnz) rescan (log_likelihood_rescan) because both accumulate
  /// the same quantized integer terms.
  double log_likelihood() const noexcept {
    return ll_fixed_to_double(ll_cells_ - ll_degrees_);
  }

  /// Full structural invariant check (matrix mirror, degree totals,
  /// sizes, fixed-point likelihood sums); O(E + nnz). For tests.
  bool check_consistency(const graph::GraphView& graph) const;

 private:
  void build_from(const graph::GraphView& graph);
  void build_from(const graph::GraphView& graph,
                  graph::Vertex chunk_vertices,
                  const std::function<void()>* release);

  /// m_.add(row, col, +1) returning the canonical quantized change to
  /// Σ xlogx(M_rs) — a single step-table lookup. Callers accumulate the
  /// returned terms locally (a register, not the __int128 member) and
  /// flush once per move; integer addition makes the grouping
  /// irrelevant to the final sum.
  LlFixed insert_cell_unit(BlockId row, BlockId col) {
    const Count value = m_.add(row, col, +1);
    return xlogx_fixed_step(value - 1);
  }

  /// m_.add(row, col, -1) counterpart of insert_cell_unit().
  LlFixed remove_cell_unit(BlockId row, BlockId col) {
    const Count value = m_.add(row, col, -1);
    return -xlogx_fixed_step(value);
  }

  BlockId num_blocks_ = 0;
  std::vector<std::int32_t> assignment_;
  DictTransposeMatrix m_;
  std::vector<Count> d_out_;
  std::vector<Count> d_in_;
  std::vector<std::int32_t> block_sizes_;
  LlFixed ll_cells_ = 0;    ///< Σ_{r,s} xlogx(M_rs), fixed point
  LlFixed ll_degrees_ = 0;  ///< Σ_r xlogx(d_out_r) + xlogx(d_in_r), fixed point
};

}  // namespace hsbp::blockmodel
