#include "blockmodel/xlogx_table.hpp"

#include <array>

namespace hsbp::blockmodel::detail {

namespace {

std::array<double, kXlogxTableSize> build_table() noexcept {
  std::array<double, kXlogxTableSize> table{};
  table[0] = 0.0;
  for (std::size_t x = 1; x < kXlogxTableSize; ++x) {
    // The exact expression of the std::log fallback, so lookups are
    // bit-identical to computing.
    const double xd = static_cast<double>(x);
    table[x] = xd * std::log(xd);
  }
  return table;
}

const std::array<double, kXlogxTableSize> table_storage = build_table();

}  // namespace

const double* const xlogx_table = table_storage.data();

}  // namespace hsbp::blockmodel::detail
