#include "blockmodel/xlogx_table.hpp"

#include <array>

namespace hsbp::blockmodel::detail {

namespace {

std::array<double, kXlogxTableSize> build_table() noexcept {
  std::array<double, kXlogxTableSize> table{};
  table[0] = 0.0;
  for (std::size_t x = 1; x < kXlogxTableSize; ++x) {
    // The exact expression of the std::log fallback, so lookups are
    // bit-identical to computing.
    const double xd = static_cast<double>(x);
    table[x] = xd * std::log(xd);
  }
  return table;
}

const std::array<double, kXlogxTableSize> table_storage = build_table();

std::array<std::int64_t, kXlogxTableSize> build_fixed_table() noexcept {
  std::array<std::int64_t, kXlogxTableSize> table{};
  for (std::size_t x = 0; x < kXlogxTableSize; ++x) {
    // Quantize the double-table value with the same rounding rule as
    // xlogx_fixed's live fallback (rint after a scale by an exact power
    // of two). Max entry ≈ 4095·log 4095·2^40 ≈ 3.7e16, comfortably
    // inside int64.
    table[x] = static_cast<std::int64_t>(std::rint(table_storage[x] * 0x1p40));
  }
  return table;
}

const std::array<std::int64_t, kXlogxTableSize> fixed_table_storage =
    build_fixed_table();

std::array<std::int64_t, kXlogxTableSize> build_step_table() noexcept {
  std::array<std::int64_t, kXlogxTableSize> table{};
  for (std::size_t x = 0; x + 1 < kXlogxTableSize; ++x) {
    table[x] = fixed_table_storage[x + 1] - fixed_table_storage[x];
  }
  // The last step leaves the table: its upper term uses the live
  // fallback's expression, which is the canonical quantization of
  // xlogx(kXlogxTableSize) everywhere else too.
  const auto top = static_cast<double>(kXlogxTableSize);
  table[kXlogxTableSize - 1] =
      static_cast<std::int64_t>(std::rint(top * std::log(top) * 0x1p40)) -
      fixed_table_storage[kXlogxTableSize - 1];
  return table;
}

const std::array<std::int64_t, kXlogxTableSize> step_table_storage =
    build_step_table();

}  // namespace

const double* const xlogx_table = table_storage.data();
const std::int64_t* const xlogx_fixed_table = fixed_table_storage.data();
const std::int64_t* const xlogx_fixed_step_table = step_table_storage.data();

}  // namespace hsbp::blockmodel::detail
