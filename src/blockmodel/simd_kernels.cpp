#include "blockmodel/simd_kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define HSBP_SIMD_X86 1
#include <immintrin.h>
#else
#define HSBP_SIMD_X86 0
#endif

namespace hsbp::blockmodel::simd {

using util::simd::Level;

namespace {

// ---------------------------------------------------------------------------
// xlogx_diff_sum
// ---------------------------------------------------------------------------

double xlogx_diff_sum_scalar(const Count* newv, const Count* oldv,
                             std::size_t n) noexcept {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i & 3] += xlogx_count(newv[i]) - xlogx_count(oldv[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

#if HSBP_SIMD_X86

double xlogx_diff_sum_sse2(const Count* newv, const Count* oldv,
                           std::size_t n) noexcept {
  // Table lookups stay scalar (no gather before AVX2); the subtraction
  // and the lane accumulators are vector, preserving the canonical
  // per-lane add order.
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d n01 = _mm_set_pd(xlogx_count(newv[i + 1]),  // hi, lo
                                   xlogx_count(newv[i]));
    const __m128d o01 =
        _mm_set_pd(xlogx_count(oldv[i + 1]), xlogx_count(oldv[i]));
    const __m128d n23 =
        _mm_set_pd(xlogx_count(newv[i + 3]), xlogx_count(newv[i + 2]));
    const __m128d o23 =
        _mm_set_pd(xlogx_count(oldv[i + 3]), xlogx_count(oldv[i + 2]));
    acc01 = _mm_add_pd(acc01, _mm_sub_pd(n01, o01));
    acc23 = _mm_add_pd(acc23, _mm_sub_pd(n23, o23));
  }
  alignas(16) double lanes[4];
  _mm_store_pd(lanes, acc01);
  _mm_store_pd(lanes + 2, acc23);
  for (; i < n; ++i) {
    lanes[i & 3] += xlogx_count(newv[i]) - xlogx_count(oldv[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) double xlogx_diff_sum_avx2(
    const Count* newv, const Count* oldv, std::size_t n) noexcept {
  const double* const table = detail::xlogx_table;
  const __m256i limit =
      _mm256_set1_epi64x(static_cast<long long>(kXlogxTableSize));
  const __m256i neg_one = _mm256_set1_epi64x(-1);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vn =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(newv + i));
    const __m256i vo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(oldv + i));
    // In range means [0, kXlogxTableSize): the async phase can stage
    // transiently negative post-move counts (fresh membership reads
    // against a pass-frozen matrix), and those must take the fallback
    // lane — xlogx_count maps them through the live-log path, never
    // the table — or the gather reads table[negative] out of bounds.
    const __m256i in_range = _mm256_and_si256(
        _mm256_and_si256(_mm256_cmpgt_epi64(limit, vn),
                         _mm256_cmpgt_epi64(vn, neg_one)),
        _mm256_and_si256(_mm256_cmpgt_epi64(limit, vo),
                         _mm256_cmpgt_epi64(vo, neg_one)));
    if (_mm256_movemask_pd(_mm256_castsi256_pd(in_range)) == 0xF) {
      const __m256d xn = _mm256_i64gather_pd(table, vn, 8);
      const __m256d xo = _mm256_i64gather_pd(table, vo, 8);
      acc = _mm256_add_pd(acc, _mm256_sub_pd(xn, xo));
    } else {
      // Rare: some count >= kXlogxTableSize (or negative, see above).
      // Compute the group with the scalar path, still one term per lane.
      alignas(32) double t[4];
      for (std::size_t j = 0; j < 4; ++j) {
        t[j] = xlogx_count(newv[i + j]) - xlogx_count(oldv[i + j]);
      }
      acc = _mm256_add_pd(acc, _mm256_load_pd(t));
    }
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 3] += xlogx_count(newv[i]) - xlogx_count(oldv[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

#endif  // HSBP_SIMD_X86

// ---------------------------------------------------------------------------
// merge_fold_sum
// ---------------------------------------------------------------------------

double merge_fold_sum_scalar(const Count* a, const Count* b, const Count* c,
                             std::size_t n) noexcept {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i & 3] +=
        (xlogx_count(a[i]) - xlogx_count(b[i])) - xlogx_count(c[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

#if HSBP_SIMD_X86

double merge_fold_sum_sse2(const Count* a, const Count* b, const Count* c,
                           std::size_t n) noexcept {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a01 = _mm_set_pd(xlogx_count(a[i + 1]), xlogx_count(a[i]));
    const __m128d b01 = _mm_set_pd(xlogx_count(b[i + 1]), xlogx_count(b[i]));
    const __m128d c01 = _mm_set_pd(xlogx_count(c[i + 1]), xlogx_count(c[i]));
    const __m128d a23 =
        _mm_set_pd(xlogx_count(a[i + 3]), xlogx_count(a[i + 2]));
    const __m128d b23 =
        _mm_set_pd(xlogx_count(b[i + 3]), xlogx_count(b[i + 2]));
    const __m128d c23 =
        _mm_set_pd(xlogx_count(c[i + 3]), xlogx_count(c[i + 2]));
    acc01 = _mm_add_pd(acc01, _mm_sub_pd(_mm_sub_pd(a01, b01), c01));
    acc23 = _mm_add_pd(acc23, _mm_sub_pd(_mm_sub_pd(a23, b23), c23));
  }
  alignas(16) double lanes[4];
  _mm_store_pd(lanes, acc01);
  _mm_store_pd(lanes + 2, acc23);
  for (; i < n; ++i) {
    lanes[i & 3] +=
        (xlogx_count(a[i]) - xlogx_count(b[i])) - xlogx_count(c[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) double merge_fold_sum_avx2(
    const Count* a, const Count* b, const Count* c, std::size_t n) noexcept {
  const double* const table = detail::xlogx_table;
  const __m256i limit =
      _mm256_set1_epi64x(static_cast<long long>(kXlogxTableSize));
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    // a == b + c with all counts non-negative on the serial merge path,
    // so a in [0, kXlogxTableSize) implies b, c in [0, a]: one range
    // check covers all three gathers. The >= 0 half keeps the gathers
    // in bounds even if a caller ever violates the invariant.
    const __m256i in_range = _mm256_and_si256(
        _mm256_cmpgt_epi64(limit, va),
        _mm256_cmpgt_epi64(va, _mm256_set1_epi64x(-1)));
    if (_mm256_movemask_pd(_mm256_castsi256_pd(in_range)) == 0xF) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i vc =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
      const __m256d xa = _mm256_i64gather_pd(table, va, 8);
      const __m256d xb = _mm256_i64gather_pd(table, vb, 8);
      const __m256d xc = _mm256_i64gather_pd(table, vc, 8);
      acc = _mm256_add_pd(acc, _mm256_sub_pd(_mm256_sub_pd(xa, xb), xc));
    } else {
      alignas(32) double t[4];
      for (std::size_t j = 0; j < 4; ++j) {
        t[j] = (xlogx_count(a[i + j]) - xlogx_count(b[i + j])) -
               xlogx_count(c[i + j]);
      }
      acc = _mm256_add_pd(acc, _mm256_load_pd(t));
    }
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 3] +=
        (xlogx_count(a[i]) - xlogx_count(b[i])) - xlogx_count(c[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

#endif  // HSBP_SIMD_X86

// Bitwise scalar-vs-vector cross-check (HSBP_SIMD_AUDIT=1): aborts with
// the kernel inputs on the first divergence. Bitwise so NaN-propagating
// inputs (negative counts from async staleness) still compare equal.
void audit_mismatch(const char* kernel, double got, double ref,
                    std::size_t n) noexcept {
  std::fprintf(stderr, "hsbp: HSBP_SIMD_AUDIT %s diverged: n=%zu %s=%.17g scalar=%.17g\n",
               kernel, n, util::simd::level_name(util::simd::active_level()),
               got, ref);
  std::abort();
}

bool bits_differ(double x, double y) noexcept {
  return std::memcmp(&x, &y, sizeof(double)) != 0;
}

}  // namespace

double xlogx_diff_sum(const Count* newv, const Count* oldv,
                      std::size_t n) noexcept {
#if HSBP_SIMD_X86
  double got;
  switch (util::simd::active_level()) {
    case Level::kAvx2:
      got = xlogx_diff_sum_avx2(newv, oldv, n);
      break;
    case Level::kSse2:
      got = xlogx_diff_sum_sse2(newv, oldv, n);
      break;
    default:
      return xlogx_diff_sum_scalar(newv, oldv, n);
  }
  if (util::simd::audit_enabled()) {
    const double ref = xlogx_diff_sum_scalar(newv, oldv, n);
    if (bits_differ(ref, got)) audit_mismatch("xlogx_diff_sum", got, ref, n);
  }
  return got;
#else
  return xlogx_diff_sum_scalar(newv, oldv, n);
#endif
}

double merge_fold_sum(const Count* a, const Count* b, const Count* c,
                      std::size_t n) noexcept {
#if HSBP_SIMD_X86
  double got;
  switch (util::simd::active_level()) {
    case Level::kAvx2:
      got = merge_fold_sum_avx2(a, b, c, n);
      break;
    case Level::kSse2:
      got = merge_fold_sum_sse2(a, b, c, n);
      break;
    default:
      return merge_fold_sum_scalar(a, b, c, n);
  }
  if (util::simd::audit_enabled()) {
    const double ref = merge_fold_sum_scalar(a, b, c, n);
    if (bits_differ(ref, got)) audit_mismatch("merge_fold_sum", got, ref, n);
  }
  return got;
#else
  return merge_fold_sum_scalar(a, b, c, n);
#endif
}

}  // namespace hsbp::blockmodel::simd
