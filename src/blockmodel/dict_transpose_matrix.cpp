#include "blockmodel/dict_transpose_matrix.hpp"

#include <cassert>

namespace hsbp::blockmodel {

bool DictTransposeMatrix::check_consistency() const {
  Count row_total = 0;
  std::size_t row_nnz = 0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (const auto& [col, value] : rows_[r]) {
      if (value <= 0) return false;
      row_total += value;
      ++row_nnz;
      if (cols_[static_cast<std::size_t>(col)].get(
              static_cast<BlockId>(r)) != value) {
        return false;
      }
    }
  }
  Count col_total = 0;
  std::size_t col_nnz = 0;
  for (const auto& slice : cols_) {
    for (const auto& [row, value] : slice) {
      (void)row;
      col_total += value;
      ++col_nnz;
    }
  }
  return row_total == total_ && col_total == total_ && row_nnz == nnz_ &&
         col_nnz == nnz_;
}

}  // namespace hsbp::blockmodel
