#include "blockmodel/dict_transpose_matrix.hpp"

#include <cassert>

namespace hsbp::blockmodel {

void DictTransposeMatrix::add(BlockId row, BlockId col, Count delta) {
  if (delta == 0) return;
  auto& row_slice = rows_[static_cast<std::size_t>(row)];
  auto& col_slice = cols_[static_cast<std::size_t>(col)];

  const auto apply = [](SparseSlice& slice, BlockId key, Count d) {
    auto [it, inserted] = slice.try_emplace(key, 0);
    it->second += d;
    assert(it->second >= 0 && "blockmodel cell went negative");
    if (it->second == 0) slice.erase(it);
  };

  apply(row_slice, col, delta);
  apply(col_slice, row, delta);
  total_ += delta;
}

std::size_t DictTransposeMatrix::nonzeros() const noexcept {
  std::size_t count = 0;
  for (const auto& slice : rows_) count += slice.size();
  return count;
}

bool DictTransposeMatrix::check_consistency() const {
  Count row_total = 0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (const auto& [col, value] : rows_[r]) {
      if (value <= 0) return false;
      row_total += value;
      const auto& mirror = cols_[static_cast<std::size_t>(col)];
      const auto it = mirror.find(static_cast<BlockId>(r));
      if (it == mirror.end() || it->second != value) return false;
    }
  }
  Count col_total = 0;
  for (const auto& slice : cols_) {
    for (const auto& [row, value] : slice) {
      (void)row;
      col_total += value;
    }
  }
  return row_total == total_ && col_total == total_;
}

}  // namespace hsbp::blockmodel
