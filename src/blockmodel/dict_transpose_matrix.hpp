/// \file dict_transpose_matrix.hpp
/// \brief Sparse C×C inter-block edge-count matrix with O(nnz) row *and*
/// column slices.
///
/// Every SBP kernel needs both row r (out-edges of block r) and column r
/// (in-edges of block r): proposals draw from row+column of a block,
/// ΔMDL touches two rows and two columns, merges fold a row+column into
/// another. CSR can't give cheap column access and a dense matrix is
/// impossible at C = V (the initial state), so the matrix keeps both a
/// row-map and a column-map ("dict" + "transpose dict"), the structure
/// the reference SBP implementations call DictTransposeMatrix.
///
/// Slices are FlatSlice (contiguous entries + open-addressing index),
/// so the weighted proposal draws and merge folds that sweep whole
/// slices run over contiguous memory instead of hash-map nodes.
///
/// Invariants (checked by check_consistency() in tests):
///   - rows_[r][s] == cols_[s][r] for every stored cell,
///   - no zero-valued entries are stored,
///   - total() equals the sum of all cells,
///   - nonzeros() equals the stored-cell count (maintained
///     incrementally by add(), not recounted).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "blockmodel/flat_slice.hpp"

namespace hsbp::blockmodel {

/// One sparse row or column: block id → edge count.
using SparseSlice = FlatSlice;

class DictTransposeMatrix {
 public:
  DictTransposeMatrix() = default;
  explicit DictTransposeMatrix(BlockId size)
      : rows_(static_cast<std::size_t>(size)),
        cols_(static_cast<std::size_t>(size)) {}

  BlockId size() const noexcept { return static_cast<BlockId>(rows_.size()); }

  /// Cell value; absent cells are 0.
  Count get(BlockId row, BlockId col) const noexcept {
    return rows_[static_cast<std::size_t>(row)].get(col);
  }

  /// Adds `delta` to cell (row, col); erases the cell if it reaches zero.
  /// Returns the cell's resulting value (0 when erased) so callers can
  /// maintain Σ f(M_rs) aggregates without a second lookup.
  /// \pre resulting value must be >= 0 (asserted).
  /// Inline so move_vertex's ±1 deltas constant-propagate into the
  /// FlatSlice fast path — this is called ~4·deg(v) times per move and
  /// an out-of-line call here is measurable on BM_MoveVertexRoundTrip.
  Count add(BlockId row, BlockId col, Count delta) {
    if (delta == 0) return rows_[static_cast<std::size_t>(row)].get(col);
    Count new_value = 0;
    const int created =
        rows_[static_cast<std::size_t>(row)].add(col, delta, new_value);
    const int mirror = cols_[static_cast<std::size_t>(col)].add(row, delta);
    assert(created == mirror && "row/column mirror diverged");
    (void)mirror;
    nnz_ = static_cast<std::size_t>(static_cast<std::int64_t>(nnz_) + created);
    total_ += delta;
    return new_value;
  }

  const SparseSlice& row(BlockId r) const noexcept {
    return rows_[static_cast<std::size_t>(r)];
  }
  const SparseSlice& col(BlockId c) const noexcept {
    return cols_[static_cast<std::size_t>(c)];
  }

  /// Sum of all cells (maintained incrementally).
  Count total() const noexcept { return total_; }

  /// Number of stored nonzero cells (maintained incrementally).
  std::size_t nonzeros() const noexcept { return nnz_; }

  /// Verifies the row/column mirror, non-negativity, and incremental
  /// total/nonzero counters; returns false on violation. O(nnz).
  bool check_consistency() const;

  /// Bulk-construction escape hatch for the sharded parallel rebuild
  /// (Blockmodel::build_from): each shard owns a disjoint set of rows
  /// (then, in a second phase, columns) and fills the slices directly,
  /// bypassing the per-add mirror/total/nnz bookkeeping. The caller
  /// must insert every cell on both sides and then restore the
  /// counters via set_bulk_counters(); check_consistency() verifies
  /// the result. Not for incremental updates — use add().
  SparseSlice& bulk_row(BlockId r) noexcept {
    return rows_[static_cast<std::size_t>(r)];
  }
  SparseSlice& bulk_col(BlockId c) noexcept {
    return cols_[static_cast<std::size_t>(c)];
  }
  void set_bulk_counters(Count total, std::size_t nnz) noexcept {
    total_ = total;
    nnz_ = nnz;
  }

 private:
  std::vector<SparseSlice> rows_;
  std::vector<SparseSlice> cols_;
  Count total_ = 0;
  std::size_t nnz_ = 0;
};

}  // namespace hsbp::blockmodel
