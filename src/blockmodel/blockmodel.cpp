#include "blockmodel/blockmodel.hpp"

#include <omp.h>

#include <cassert>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace hsbp::blockmodel {

using graph::Graph;
using graph::Vertex;

Blockmodel Blockmodel::from_assignment(const Graph& graph,
                                       std::span<const std::int32_t> assignment,
                                       BlockId num_blocks) {
  if (assignment.size() != static_cast<std::size_t>(graph.num_vertices())) {
    throw std::invalid_argument("Blockmodel: assignment size " +
                                std::to_string(assignment.size()) +
                                " != vertex count " +
                                std::to_string(graph.num_vertices()));
  }
  for (const std::int32_t label : assignment) {
    if (label < 0 || label >= num_blocks) {
      throw std::invalid_argument("Blockmodel: label " +
                                  std::to_string(label) +
                                  " outside [0, " +
                                  std::to_string(num_blocks) + ")");
    }
  }
  Blockmodel b;
  b.num_blocks_ = num_blocks;
  b.assignment_.assign(assignment.begin(), assignment.end());
  b.build_from(graph);
  return b;
}

Blockmodel Blockmodel::identity(const Graph& graph) {
  std::vector<std::int32_t> assignment(
      static_cast<std::size_t>(graph.num_vertices()));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    assignment[v] = static_cast<std::int32_t>(v);
  }
  return from_assignment(graph, assignment, graph.num_vertices());
}

void Blockmodel::build_from(const Graph& graph) {
  const auto blocks = static_cast<std::size_t>(num_blocks_);
  m_ = DictTransposeMatrix(num_blocks_);
  d_out_.assign(blocks, 0);
  d_in_.assign(blocks, 0);
  block_sizes_.assign(blocks, 0);

  for (const std::int32_t label : assignment_) {
    ++block_sizes_[static_cast<std::size_t>(label)];
  }

  // Parallel accumulation: each thread gathers (block pair → count) into
  // a local flat map over its vertex range, then maps merge serially
  // into the shared matrix (merge cost is O(distinct pairs), far below
  // O(E) once blocks are coarse).
  const Vertex v_count = graph.num_vertices();
  const int threads = omp_get_max_threads();
  std::vector<std::unordered_map<std::uint64_t, Count>> locals(
      static_cast<std::size_t>(threads));

#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    auto& local = locals[tid];
#pragma omp for schedule(static)
    for (Vertex v = 0; v < v_count; ++v) {
      const auto src_block = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(assignment_[static_cast<std::size_t>(v)]));
      for (const Vertex target : graph.out_neighbors(v)) {
        const auto dst_block = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(
                assignment_[static_cast<std::size_t>(target)]));
        ++local[(src_block << 32) | dst_block];
      }
    }
  }

  for (const auto& local : locals) {
    for (const auto& [key, count] : local) {
      const auto row = static_cast<BlockId>(key >> 32);
      const auto col = static_cast<BlockId>(key & 0xffffffffULL);
      m_.add(row, col, count);
    }
  }

  for (BlockId r = 0; r < num_blocks_; ++r) {
    for (const auto& [col, count] : m_.row(r)) {
      (void)col;
      d_out_[static_cast<std::size_t>(r)] += count;
    }
    for (const auto& [row, count] : m_.col(r)) {
      (void)row;
      d_in_[static_cast<std::size_t>(r)] += count;
    }
  }
}

void Blockmodel::move_vertex(const Graph& graph, Vertex v, BlockId to) {
  const BlockId from = assignment_[static_cast<std::size_t>(v)];
  if (from == to) return;
  assert(to >= 0 && to < num_blocks_);

  // Each edge incident on v is touched exactly once: out-edges cover the
  // self-loop case (v, v); in-edges skip u == v to avoid double counting.
  for (const Vertex u : graph.out_neighbors(v)) {
    const BlockId ub = (u == v) ? from : assignment_[static_cast<std::size_t>(u)];
    m_.add(from, ub, -1);
  }
  for (const Vertex u : graph.in_neighbors(v)) {
    if (u == v) continue;
    m_.add(assignment_[static_cast<std::size_t>(u)], from, -1);
  }

  assignment_[static_cast<std::size_t>(v)] = to;

  for (const Vertex u : graph.out_neighbors(v)) {
    const BlockId ub = (u == v) ? to : assignment_[static_cast<std::size_t>(u)];
    m_.add(to, ub, +1);
  }
  for (const Vertex u : graph.in_neighbors(v)) {
    if (u == v) continue;
    m_.add(assignment_[static_cast<std::size_t>(u)], to, +1);
  }

  const Count out_deg = graph.out_degree(v);
  const Count in_deg = graph.in_degree(v);
  d_out_[static_cast<std::size_t>(from)] -= out_deg;
  d_out_[static_cast<std::size_t>(to)] += out_deg;
  d_in_[static_cast<std::size_t>(from)] -= in_deg;
  d_in_[static_cast<std::size_t>(to)] += in_deg;
  --block_sizes_[static_cast<std::size_t>(from)];
  ++block_sizes_[static_cast<std::size_t>(to)];
}

void Blockmodel::rebuild(const Graph& graph,
                         std::span<const std::int32_t> assignment) {
  assert(assignment.size() == static_cast<std::size_t>(graph.num_vertices()));
  assignment_.assign(assignment.begin(), assignment.end());
  build_from(graph);
}

bool Blockmodel::check_consistency(const Graph& graph) const {
  if (!m_.check_consistency()) return false;
  Blockmodel fresh = from_assignment(graph, assignment_, num_blocks_);
  if (fresh.m_.total() != m_.total()) return false;
  for (BlockId r = 0; r < num_blocks_; ++r) {
    if (fresh.d_out_[static_cast<std::size_t>(r)] !=
            d_out_[static_cast<std::size_t>(r)] ||
        fresh.d_in_[static_cast<std::size_t>(r)] !=
            d_in_[static_cast<std::size_t>(r)] ||
        fresh.block_sizes_[static_cast<std::size_t>(r)] !=
            block_sizes_[static_cast<std::size_t>(r)]) {
      return false;
    }
    for (const auto& [col, value] : fresh.m_.row(r)) {
      if (m_.get(r, col) != value) return false;
    }
    for (const auto& [col, value] : m_.row(r)) {
      if (fresh.m_.get(r, col) != value) return false;
    }
  }
  return true;
}

}  // namespace hsbp::blockmodel
