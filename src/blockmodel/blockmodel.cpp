#include "blockmodel/blockmodel.hpp"

#include <omp.h>

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/omp_region.hpp"

namespace hsbp::blockmodel {

using graph::GraphView;
using graph::Vertex;

Blockmodel Blockmodel::from_assignment(const GraphView& graph,
                                       std::span<const std::int32_t> assignment,
                                       BlockId num_blocks) {
  if (assignment.size() != static_cast<std::size_t>(graph.num_vertices())) {
    throw std::invalid_argument("Blockmodel: assignment size " +
                                std::to_string(assignment.size()) +
                                " != vertex count " +
                                std::to_string(graph.num_vertices()));
  }
  for (const std::int32_t label : assignment) {
    if (label < 0 || label >= num_blocks) {
      throw std::invalid_argument("Blockmodel: label " +
                                  std::to_string(label) +
                                  " outside [0, " +
                                  std::to_string(num_blocks) + ")");
    }
  }
  Blockmodel b;
  b.num_blocks_ = num_blocks;
  b.assignment_.assign(assignment.begin(), assignment.end());
  b.build_from(graph);
  return b;
}

Blockmodel Blockmodel::from_assignment_chunked(
    const GraphView& graph, std::span<const std::int32_t> assignment,
    BlockId num_blocks, Vertex chunk_vertices,
    const std::function<void()>& release) {
  if (assignment.size() != static_cast<std::size_t>(graph.num_vertices())) {
    throw std::invalid_argument("Blockmodel: assignment size " +
                                std::to_string(assignment.size()) +
                                " != vertex count " +
                                std::to_string(graph.num_vertices()));
  }
  for (const std::int32_t label : assignment) {
    if (label < 0 || label >= num_blocks) {
      throw std::invalid_argument("Blockmodel: label " +
                                  std::to_string(label) +
                                  " outside [0, " +
                                  std::to_string(num_blocks) + ")");
    }
  }
  Blockmodel b;
  b.num_blocks_ = num_blocks;
  b.assignment_.assign(assignment.begin(), assignment.end());
  b.build_from(graph, chunk_vertices, &release);
  return b;
}

Blockmodel Blockmodel::identity(const GraphView& graph) {
  std::vector<std::int32_t> assignment(
      static_cast<std::size_t>(graph.num_vertices()));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    assignment[v] = static_cast<std::int32_t>(v);
  }
  return from_assignment(graph, assignment, graph.num_vertices());
}

void Blockmodel::build_from(const GraphView& graph) {
  build_from(graph, 0, nullptr);
}

void Blockmodel::build_from(const GraphView& graph, Vertex chunk_vertices,
                            const std::function<void()>* release) {
  const auto blocks = static_cast<std::size_t>(num_blocks_);
  m_ = DictTransposeMatrix(num_blocks_);
  d_out_.assign(blocks, 0);
  d_in_.assign(blocks, 0);
  block_sizes_.assign(blocks, 0);
  ll_cells_ = 0;
  ll_degrees_ = 0;

  for (const std::int32_t label : assignment_) {
    ++block_sizes_[static_cast<std::size_t>(label)];
  }

  // Sharded parallel accumulation (DESIGN §11): phase A gathers each
  // thread's (block pair → count) maps bucketed by row owner
  // (shard = row mod S); phase B merges each row shard into the matrix
  // rows — no two shards share a row, so no locks — accumulating d_out_
  // in the same sweep and re-emitting the merged cells bucketed by
  // column owner; phase C merges those into the column slices,
  // accumulating d_in_. The likelihood partials are per-shard
  // fixed-point integers, so the serial reduction at the end is
  // order-independent and the result is bit-identical to the
  // incrementally maintained sums.
  const Vertex v_count = graph.num_vertices();
  const int threads = omp_get_max_threads();
  const auto shards = static_cast<std::size_t>(threads);

  std::vector<std::vector<std::unordered_map<std::uint64_t, Count>>> locals(
      shards, std::vector<std::unordered_map<std::uint64_t, Count>>(shards));

  struct ColCell {
    BlockId row;
    BlockId col;
    Count value;
  };
  std::vector<std::vector<std::vector<ColCell>>> col_cells(
      shards, std::vector<std::vector<ColCell>>(shards));

  struct ShardTotals {
    Count total = 0;
    std::int64_t nnz = 0;
    LlFixed ll_cells = 0;
    LlFixed ll_degrees = 0;
  };
  std::vector<ShardTotals> totals(shards);

  // Orphaned worksharing bodies: each runs inside an enclosing
  // util::omp_region. Splitting them out lets the chunked path below run
  // phase A over bounded vertex ranges (releasing mapped pages between
  // ranges) while the default path keeps the original single region.
  const auto phase_a = [&](Vertex begin, Vertex end) {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    auto& local = locals[tid];
#pragma omp for schedule(static) nowait
    for (Vertex v = begin; v < end; ++v) {
      const auto src_block = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(assignment_[static_cast<std::size_t>(v)]));
      auto& bucket = local[static_cast<std::size_t>(src_block) % shards];
      for (const Vertex target : graph.out_neighbors(v)) {
        const auto dst_block = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(
                assignment_[static_cast<std::size_t>(target)]));
        ++bucket[(src_block << 32) | dst_block];
      }
    }
  };

  const auto phase_b = [&] {
#pragma omp for schedule(static, 1) nowait
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(shards); ++s) {
      ShardTotals& t = totals[static_cast<std::size_t>(s)];
      for (std::size_t src = 0; src < shards; ++src) {
        for (const auto& [key, count] :
             locals[src][static_cast<std::size_t>(s)]) {
          const auto row = static_cast<BlockId>(key >> 32);
          const auto col = static_cast<BlockId>(key & 0xffffffffULL);
          t.nnz += m_.bulk_row(row).add(col, count);
          d_out_[static_cast<std::size_t>(row)] += count;
          t.total += count;
        }
      }
      // Owned rows are final here: fold their cells into the likelihood
      // partial and re-bucket them by column owner for phase C.
      auto& out_buckets = col_cells[static_cast<std::size_t>(s)];
      for (auto r = static_cast<BlockId>(s); r < num_blocks_;
           r += static_cast<BlockId>(shards)) {
        for (const auto& [col, value] : m_.bulk_row(r)) {
          t.ll_cells += xlogx_fixed(value);
          out_buckets[static_cast<std::size_t>(col) % shards].push_back(
              {r, col, value});
        }
        t.ll_degrees += xlogx_fixed(d_out_[static_cast<std::size_t>(r)]);
      }
    }
  };

  const auto phase_c = [&] {
#pragma omp for schedule(static, 1) nowait
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(shards); ++s) {
      ShardTotals& t = totals[static_cast<std::size_t>(s)];
      for (std::size_t src = 0; src < shards; ++src) {
        for (const ColCell& cell :
             col_cells[src][static_cast<std::size_t>(s)]) {
          m_.bulk_col(cell.col).add(cell.row, cell.value);
          d_in_[static_cast<std::size_t>(cell.col)] += cell.value;
        }
      }
      for (auto c = static_cast<BlockId>(s); c < num_blocks_;
           c += static_cast<BlockId>(shards)) {
        t.ll_degrees += xlogx_fixed(d_in_[static_cast<std::size_t>(c)]);
      }
    }
  };

  if (release == nullptr) {
    util::omp_region([&] {
      phase_a(0, v_count);
      util::omp_region_barrier();  // phase A maps → phase B merge
      phase_b();
      util::omp_region_barrier();  // phase B cells → phase C columns
      phase_c();
    });
  } else {
    // Out-of-core path: scan bounded vertex ranges, dropping mapped CSR
    // pages between ranges so peak residency stays near one chunk. The
    // gathered maps are the same integer counts, just accumulated in a
    // different grouping.
    const std::int64_t chunk =
        chunk_vertices > 0 ? chunk_vertices
                           : std::max<std::int64_t>(v_count, 1);
    for (std::int64_t begin = 0; begin < v_count; begin += chunk) {
      const auto end = static_cast<Vertex>(
          std::min<std::int64_t>(begin + chunk, v_count));
      util::omp_region(
          [&] { phase_a(static_cast<Vertex>(begin), end); });
      (*release)();
    }
    util::omp_region([&] {
      phase_b();
      util::omp_region_barrier();  // phase B cells → phase C columns
      phase_c();
    });
  }

  Count total = 0;
  std::int64_t nnz = 0;
  for (const ShardTotals& t : totals) {
    total += t.total;
    nnz += t.nnz;
    ll_cells_ += t.ll_cells;
    ll_degrees_ += t.ll_degrees;
  }
  m_.set_bulk_counters(total, static_cast<std::size_t>(nnz));
}

void Blockmodel::move_vertex(const GraphView& graph, Vertex v, BlockId to) {
  const BlockId from = assignment_[static_cast<std::size_t>(v)];
  if (from == to) return;
  assert(to >= 0 && to < num_blocks_);
  // Each edge incident on v is touched exactly once: out-edges cover the
  // self-loop case (v, v); in-edges skip u == v to avoid double counting.
  // The Σ xlogx(M_rs) step terms (one canonical step-table lookup per
  // ±1 cell change) accumulate in a local before one flush into the
  // fixed-point member — integer addition keeps the sum bit-identical
  // to any other grouping.
  LlFixed ll_delta = 0;
  for (const Vertex u : graph.out_neighbors(v)) {
    const BlockId ub = (u == v) ? from : assignment_[static_cast<std::size_t>(u)];
    ll_delta += remove_cell_unit(from, ub);
  }
  for (const Vertex u : graph.in_neighbors(v)) {
    if (u == v) continue;
    ll_delta += remove_cell_unit(assignment_[static_cast<std::size_t>(u)], from);
  }

  assignment_[static_cast<std::size_t>(v)] = to;

  for (const Vertex u : graph.out_neighbors(v)) {
    const BlockId ub = (u == v) ? to : assignment_[static_cast<std::size_t>(u)];
    ll_delta += insert_cell_unit(to, ub);
  }
  for (const Vertex u : graph.in_neighbors(v)) {
    if (u == v) continue;
    ll_delta += insert_cell_unit(assignment_[static_cast<std::size_t>(u)], to);
  }
  ll_cells_ += ll_delta;

  const Count out_deg = graph.out_degree(v);
  const Count in_deg = graph.in_degree(v);
  ll_degrees_ -= xlogx_fixed(d_out_[static_cast<std::size_t>(from)]) +
                 xlogx_fixed(d_out_[static_cast<std::size_t>(to)]) +
                 xlogx_fixed(d_in_[static_cast<std::size_t>(from)]) +
                 xlogx_fixed(d_in_[static_cast<std::size_t>(to)]);
  d_out_[static_cast<std::size_t>(from)] -= out_deg;
  d_out_[static_cast<std::size_t>(to)] += out_deg;
  d_in_[static_cast<std::size_t>(from)] -= in_deg;
  d_in_[static_cast<std::size_t>(to)] += in_deg;
  ll_degrees_ += xlogx_fixed(d_out_[static_cast<std::size_t>(from)]) +
                 xlogx_fixed(d_out_[static_cast<std::size_t>(to)]) +
                 xlogx_fixed(d_in_[static_cast<std::size_t>(from)]) +
                 xlogx_fixed(d_in_[static_cast<std::size_t>(to)]);
  --block_sizes_[static_cast<std::size_t>(from)];
  ++block_sizes_[static_cast<std::size_t>(to)];
}

void Blockmodel::rebuild(const GraphView& graph,
                         std::span<const std::int32_t> assignment) {
  assert(assignment.size() == static_cast<std::size_t>(graph.num_vertices()));
  assignment_.assign(assignment.begin(), assignment.end());
  build_from(graph);
}

bool Blockmodel::check_consistency(const GraphView& graph) const {
  if (!m_.check_consistency()) return false;
  Blockmodel fresh = from_assignment(graph, assignment_, num_blocks_);
  if (fresh.m_.total() != m_.total()) return false;
  // The maintained fixed-point likelihood sums must equal a from-scratch
  // rebuild's exactly (integer addition is order-independent).
  if (fresh.ll_cells_ != ll_cells_ || fresh.ll_degrees_ != ll_degrees_) {
    return false;
  }
  for (BlockId r = 0; r < num_blocks_; ++r) {
    if (fresh.d_out_[static_cast<std::size_t>(r)] !=
            d_out_[static_cast<std::size_t>(r)] ||
        fresh.d_in_[static_cast<std::size_t>(r)] !=
            d_in_[static_cast<std::size_t>(r)] ||
        fresh.block_sizes_[static_cast<std::size_t>(r)] !=
            block_sizes_[static_cast<std::size_t>(r)]) {
      return false;
    }
    for (const auto& [col, value] : fresh.m_.row(r)) {
      if (m_.get(r, col) != value) return false;
    }
    for (const auto& [col, value] : m_.row(r)) {
      if (fresh.m_.get(r, col) != value) return false;
    }
  }
  return true;
}

}  // namespace hsbp::blockmodel
