#include "blockmodel/flat_slice.hpp"

namespace hsbp::blockmodel {

int FlatSlice::spill_and_insert(BlockId key, Count delta) {
  spill_.assign(inline_.data(), inline_.data() + size_);
  rehash(kInitialTableCapacity);
  return insert_indexed(key, delta, find_slot(key));
}

int FlatSlice::insert_indexed(BlockId key, Count delta, std::uint32_t slot) {
  assert(delta > 0 && "creating a slice entry with a negative value");
  // Keep the probe table at most 3/4 full.
  if ((size_ + 1) * 4 > index_.size() * 3) {
    rehash(static_cast<std::uint32_t>(index_.size()) * 2);
    slot = find_slot(key);
  }
  spill_.push_back({key, delta});
  index_[slot] = ++size_;
  return +1;
}

void FlatSlice::rehash(std::uint32_t capacity) {
  assert((capacity & (capacity - 1)) == 0 && capacity > size_);
  index_.assign(capacity, 0);
  shift_ = 32;
  for (std::uint32_t c = capacity; c > 1; c >>= 1) --shift_;
  const std::uint32_t mask = capacity - 1;
  for (std::uint32_t pos = 0; pos < size_; ++pos) {
    std::uint32_t slot = bucket_of(spill_[pos].key);
    while (index_[slot] != 0) slot = (slot + 1) & mask;
    index_[slot] = pos + 1;
  }
}

void FlatSlice::erase_slot(std::uint32_t hole) noexcept {
  // Backward-shift deletion for linear probing: pull every displaced
  // entry after the hole one step back along its probe path so lookups
  // never need tombstones.
  const std::uint32_t mask =
      static_cast<std::uint32_t>(index_.size()) - 1;
  std::uint32_t next = (hole + 1) & mask;
  while (index_[next] != 0) {
    const std::uint32_t home = bucket_of(spill_[index_[next] - 1].key);
    // The entry at `next` may fill `hole` iff `hole` lies on its probe
    // path, i.e. its displacement reaches at least back to the hole.
    if (((next - home) & mask) >= ((next - hole) & mask)) {
      index_[hole] = index_[next];
      hole = next;
    }
    next = (next + 1) & mask;
  }
  index_[hole] = 0;
}

void FlatSlice::erase_entry(std::uint32_t pos) noexcept {
  const std::uint32_t last = size_ - 1;
  if (pos != last) {
    spill_[pos] = spill_[last];
    // Redirect the moved entry's slot to its new position.
    index_[find_slot(spill_[pos].key)] = pos + 1;
  }
  spill_.pop_back();
  --size_;
}

}  // namespace hsbp::blockmodel
