/// \file merge_delta.hpp
/// \brief ΔMDL of merging one block into another — the kernel of the
/// block-merge phase (paper Alg. 1: "Calculate ΔMDL when c is merged
/// with c'").
#pragma once

#include "blockmodel/blockmodel.hpp"
#include "graph/graph.hpp"

namespace hsbp::blockmodel {

/// ΔMDL of relabeling every vertex of block `from` into block `to`,
/// computed from the current blockmodel in O(nnz(row from) +
/// nnz(col from)). Includes the model-complexity change from C → C−1
/// (E·h and V·log C terms), so the value is an exact MDL difference.
/// \pre from != to.
double merge_delta_mdl(const Blockmodel& b, BlockId from, BlockId to,
                       graph::Vertex num_vertices, graph::EdgeCount num_edges);

}  // namespace hsbp::blockmodel
