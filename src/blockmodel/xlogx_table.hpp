/// \file xlogx_table.hpp
/// \brief Precomputed x·log x for small integer counts, in double and in
/// order-independent fixed point.
///
/// Every ΔMDL kernel is dominated by xlogx() over M_rs cells and block
/// degrees. Early in a run (C ≈ V) almost every count is a small
/// integer — most cells hold 1 or 2 — so a table lookup replaces the
/// libm log() call on the overwhelming majority of evaluations. Table
/// entries are computed with the exact same expression as the fallback
/// (`x * std::log(x)`), so table hits are bit-identical to computing:
/// the optimized kernels stay bit-for-bit equal to the reference ones.
///
/// The fixed-point variant exists for the *incrementally maintained*
/// log-likelihood (DESIGN §11): the Blockmodel keeps Σ xlogx(M_rs) and
/// Σ xlogx(d) as integers scaled by 2^kLlFixedShift. Integer addition
/// is commutative and associative, so a sum maintained one move at a
/// time equals a from-scratch rescan *exactly*, regardless of slice
/// iteration order — which floating-point accumulation cannot promise.
/// Terms are quantized once (per count value), not per use, so the
/// delta-applied and rebuilt states agree bit-for-bit. The accumulator
/// is __int128: at shift 40 a single term reaches ~2^85 for the largest
/// representable counts, far past int64, while the 2^-41 per-term
/// rounding error keeps the decoded double well inside the 1e-9
/// tolerances the MDL tests use.
#pragma once

#include <cmath>
#include <cstdint>

#include "blockmodel/dict_transpose_matrix.hpp"

namespace hsbp::blockmodel {

inline constexpr std::size_t kXlogxTableSize = 4096;

/// Fixed-point accumulator for Σ xlogx terms (scaled by 2^kLlFixedShift).
__extension__ typedef __int128 LlFixed;

inline constexpr int kLlFixedShift = 40;

namespace detail {
/// xlogx_table[x] == x * std::log(x) for x in [0, kXlogxTableSize),
/// with the conventional 0·log 0 = 0. Filled once at startup.
extern const double* const xlogx_table;
/// xlogx_fixed_table[x] == rint(xlogx_table[x] * 2^kLlFixedShift).
extern const std::int64_t* const xlogx_fixed_table;
/// xlogx_fixed_step_table[x] == xlogx_fixed(x+1) - xlogx_fixed(x): the
/// canonical quantized change of a Σ xlogx sum when a count steps
/// x → x+1. Differences of the canonical per-count values, never a
/// separately rounded quantity, so step-maintained sums stay
/// bit-identical to rescans.
extern const std::int64_t* const xlogx_fixed_step_table;
}  // namespace detail

/// x·log x for a non-negative integer count: table lookup below
/// kXlogxTableSize, std::log fallback above. \pre x >= 0.
inline double xlogx_count(Count x) noexcept {
  if (static_cast<std::uint64_t>(x) < kXlogxTableSize) {
    return detail::xlogx_table[static_cast<std::size_t>(x)];
  }
  const double xd = static_cast<double>(x);
  return xd * std::log(xd);
}

/// x·log x quantized to fixed point. The live fallback uses the exact
/// same expression as the table fill, so every count maps to one
/// canonical quantized value no matter where it is evaluated.
inline LlFixed xlogx_fixed(Count x) noexcept {
  if (static_cast<std::uint64_t>(x) < kXlogxTableSize) {
    return detail::xlogx_fixed_table[static_cast<std::size_t>(x)];
  }
  const double xd = static_cast<double>(x);
  return static_cast<LlFixed>(std::rint(xd * std::log(xd) * 0x1p40));
}

/// F(x+1) − F(x) for the canonical quantized xlogx: the exact amount a
/// Σ xlogx(count) accumulator changes when one count steps x → x+1.
/// One table lookup where the plain formulation needs two — this is
/// what keeps move_vertex's per-edge likelihood maintenance cheap.
/// \pre x >= 0.
inline LlFixed xlogx_fixed_step(Count x) noexcept {
  if (static_cast<std::uint64_t>(x) < kXlogxTableSize) {
    return detail::xlogx_fixed_step_table[static_cast<std::size_t>(x)];
  }
  return xlogx_fixed(x + 1) - xlogx_fixed(x);
}

/// Decodes a fixed-point Σ xlogx accumulator back to double.
inline double ll_fixed_to_double(LlFixed v) noexcept {
  return static_cast<double>(v) * 0x1p-40;
}

}  // namespace hsbp::blockmodel
