/// \file xlogx_table.hpp
/// \brief Precomputed x·log x for small integer counts.
///
/// Every ΔMDL kernel is dominated by xlogx() over M_rs cells and block
/// degrees. Early in a run (C ≈ V) almost every count is a small
/// integer — most cells hold 1 or 2 — so a table lookup replaces the
/// libm log() call on the overwhelming majority of evaluations. Table
/// entries are computed with the exact same expression as the fallback
/// (`x * std::log(x)`), so table hits are bit-identical to computing:
/// the optimized kernels stay bit-for-bit equal to the reference ones.
#pragma once

#include <cmath>
#include <cstdint>

#include "blockmodel/dict_transpose_matrix.hpp"

namespace hsbp::blockmodel {

inline constexpr std::size_t kXlogxTableSize = 4096;

namespace detail {
/// xlogx_table[x] == x * std::log(x) for x in [0, kXlogxTableSize),
/// with the conventional 0·log 0 = 0. Filled once at startup.
extern const double* const xlogx_table;
}  // namespace detail

/// x·log x for a non-negative integer count: table lookup below
/// kXlogxTableSize, std::log fallback above. \pre x >= 0.
inline double xlogx_count(Count x) noexcept {
  if (static_cast<std::uint64_t>(x) < kXlogxTableSize) {
    return detail::xlogx_table[static_cast<std::size_t>(x)];
  }
  const double xd = static_cast<double>(x);
  return xd * std::log(xd);
}

}  // namespace hsbp::blockmodel
