/// \file flat_slice.hpp
/// \brief Flat sparse map for one row/column of the blockmodel matrix.
///
/// The hot kernels (proposal weighted draws, merge ΔMDL, rebuild degree
/// sums) iterate entire slices; std::unordered_map makes every step a
/// pointer chase into a separately allocated node. FlatSlice stores the
/// live entries as one contiguous (BlockId, Count) span:
///   - below kInlineCapacity entries: an inline array, no heap at all,
///     lookups are a short linear scan (this covers almost every slice
///     early in a run, when C ≈ V and rows hold ~deg(v) entries);
///   - above: a dense entry vector plus an open-addressing probe table
///     (Fibonacci hashing, linear probing, backward-shift deletion)
///     mapping key → entry position, so lookups stay O(1) while
///     iteration remains a linear sweep over contiguous memory.
///
/// Iteration order is deterministic (insertion order, perturbed only by
/// swap-remove on erase) but differs from std::unordered_map's — fixed
/// seeds reproduce within a build, not against pre-FlatSlice builds.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace hsbp::blockmodel {

using BlockId = std::int32_t;
using Count = std::int64_t;

class FlatSlice {
 public:
  struct Entry {
    BlockId key;
    Count value;
  };

  FlatSlice() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// The live entries as one contiguous span (no zero-valued entries).
  std::span<const Entry> entries() const noexcept {
    return {data(), static_cast<std::size_t>(size_)};
  }
  const Entry* begin() const noexcept { return data(); }
  const Entry* end() const noexcept { return data() + size_; }

  /// Value for `key`; absent keys are 0.
  Count get(BlockId key) const noexcept {
    const Entry* e = find(key);
    return e ? e->value : 0;
  }

  /// Value for `key`. \throws std::out_of_range if absent.
  Count at(BlockId key) const {
    const Entry* e = find(key);
    if (!e) throw std::out_of_range("FlatSlice::at: key not present");
    return e->value;
  }

  /// Adds `delta` to the entry for `key`, erasing it if it reaches zero.
  /// Returns +1 if an entry was created, -1 if one was erased, else 0;
  /// `new_value` receives the entry's resulting value (0 when erased) so
  /// callers maintaining Σ f(value) aggregates — the Blockmodel's
  /// fixed-point log-likelihood — get it without a second lookup.
  /// \pre the resulting value must be >= 0 (asserted).
  /// Inline so the dominant case — updating an existing entry, what
  /// move_vertex does ~4·deg(v) times per accepted move — compiles down
  /// to a probe and an in-place increment; create/erase/grow are the
  /// out-of-line slow paths.
  int add(BlockId key, Count delta, Count& new_value) {
    if (delta == 0) {
      new_value = get(key);
      return 0;
    }

    if (!indexed()) {
      for (std::uint32_t i = 0; i < size_; ++i) {
        if (inline_[i].key != key) continue;
        inline_[i].value += delta;
        assert(inline_[i].value >= 0 && "slice entry went negative");
        new_value = inline_[i].value;
        if (inline_[i].value != 0) return 0;
        inline_[i] = inline_[--size_];
        return -1;
      }
      assert(delta > 0 && "creating a slice entry with a negative value");
      new_value = delta;
      if (size_ < kInlineCapacity) {
        inline_[size_++] = {key, delta};
        return +1;
      }
      return spill_and_insert(key, delta);
    }

    const std::uint32_t slot = find_slot(key);
    if (index_[slot] != 0) {
      const std::uint32_t pos = index_[slot] - 1;
      spill_[pos].value += delta;
      assert(spill_[pos].value >= 0 && "slice entry went negative");
      new_value = spill_[pos].value;
      if (spill_[pos].value != 0) return 0;
      erase_slot(slot);
      erase_entry(pos);
      return -1;
    }
    new_value = delta;
    return insert_indexed(key, delta, slot);
  }

  /// add() for callers that don't need the resulting value.
  int add(BlockId key, Count delta) {
    Count ignored;
    return add(key, delta, ignored);
  }

  /// True once the slice has left inline mode (observable for tests).
  bool indexed() const noexcept { return !index_.empty(); }

 private:
  static constexpr std::uint32_t kInlineCapacity = 8;
  static constexpr std::uint32_t kInitialTableCapacity = 32;

  const Entry* data() const noexcept {
    return indexed() ? spill_.data() : inline_.data();
  }
  Entry* data() noexcept { return indexed() ? spill_.data() : inline_.data(); }

  const Entry* find(BlockId key) const noexcept {
    if (!indexed()) {
      for (const Entry* e = inline_.data(); e != inline_.data() + size_; ++e) {
        if (e->key == key) return e;
      }
      return nullptr;
    }
    const std::uint32_t slot = find_slot(key);
    return index_[slot] == 0 ? nullptr : &spill_[index_[slot] - 1];
  }

  std::uint32_t bucket_of(BlockId key) const noexcept {
    // Fibonacci hashing: multiply spreads the dense block ids, the
    // shift keeps the high (well-mixed) bits.
    return (static_cast<std::uint32_t>(key) * 2654435769u) >> shift_;
  }

  /// Slot holding `key`, or the empty slot where it would be inserted.
  std::uint32_t find_slot(BlockId key) const noexcept {
    const std::uint32_t mask = static_cast<std::uint32_t>(index_.size()) - 1;
    std::uint32_t slot = bucket_of(key);
    while (index_[slot] != 0 && spill_[index_[slot] - 1].key != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  int spill_and_insert(BlockId key, Count delta);
  int insert_indexed(BlockId key, Count delta, std::uint32_t slot);
  void rehash(std::uint32_t capacity);
  void erase_slot(std::uint32_t hole) noexcept;
  void erase_entry(std::uint32_t pos) noexcept;

  std::uint32_t size_ = 0;
  std::uint32_t shift_ = 0;  ///< 32 − log2(table capacity); 0 in inline mode
  std::array<Entry, kInlineCapacity> inline_{};
  std::vector<Entry> spill_;          ///< dense entries (indexed mode)
  std::vector<std::uint32_t> index_;  ///< slot → entry pos + 1; 0 = empty
};

}  // namespace hsbp::blockmodel
