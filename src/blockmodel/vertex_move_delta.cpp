#include "blockmodel/vertex_move_delta.hpp"

#include <algorithm>
#include <cassert>

#include "blockmodel/mdl.hpp"

namespace hsbp::blockmodel {

NeighborBlockCounts gather_neighbor_blocks(
    const graph::Graph& graph, std::span<const std::int32_t> assignment,
    graph::Vertex v) {
  return gather_neighbor_blocks_view(
      graph,
      [assignment](graph::Vertex u) {
        return assignment[static_cast<std::size_t>(u)];
      },
      v);
}

Count MoveDelta::new_value(const Blockmodel& b, BlockId row,
                           BlockId col) const {
  Count value = b.matrix().get(row, col);
  for (const CellDelta& cd : cell_deltas) {
    if (cd.row == row && cd.col == col) value += cd.delta;
  }
  return value;
}

MoveDelta vertex_move_delta(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb) {
  assert(from != to);
  MoveDelta result;
  auto& cells = result.cell_deltas;
  cells.reserve(2 * (nb.out.size() + nb.in.size()) + 4);

  const auto add_cell = [&cells](BlockId row, BlockId col, Count delta) {
    for (CellDelta& cd : cells) {
      if (cd.row == row && cd.col == col) {
        cd.delta += delta;
        return;
      }
    }
    cells.push_back({row, col, delta});
  };

  // Out-edges v→u (u keeps its block t): (from,t) loses, (to,t) gains.
  for (const auto& [t, k] : nb.out) {
    add_cell(from, t, -k);
    add_cell(to, t, +k);
  }
  // In-edges u→v: (t,from) loses, (t,to) gains.
  for (const auto& [t, k] : nb.in) {
    add_cell(t, from, -k);
    add_cell(t, to, +k);
  }
  // Self-loops move diagonally.
  if (nb.self_loops > 0) {
    add_cell(from, from, -nb.self_loops);
    add_cell(to, to, +nb.self_loops);
  }

  double delta_cells = 0.0;
  for (const CellDelta& cd : cells) {
    if (cd.delta == 0) continue;
    const Count old_value = b.matrix().get(cd.row, cd.col);
    const Count new_value = old_value + cd.delta;
    assert(new_value >= 0);
    delta_cells += xlogx(static_cast<double>(new_value)) -
                   xlogx(static_cast<double>(old_value));
  }

  const auto degree_delta = [](Count before_from, Count before_to, Count k) {
    return xlogx(static_cast<double>(before_from - k)) -
           xlogx(static_cast<double>(before_from)) +
           xlogx(static_cast<double>(before_to + k)) -
           xlogx(static_cast<double>(before_to));
  };
  const double delta_degrees =
      degree_delta(b.degree_out(from), b.degree_out(to), nb.degree_out) +
      degree_delta(b.degree_in(from), b.degree_in(to), nb.degree_in);

  // ΔL = Δcells − Δdegrees; ΔMDL = −ΔL (model term unchanged).
  result.delta_mdl = -(delta_cells - delta_degrees);
  return result;
}

}  // namespace hsbp::blockmodel
