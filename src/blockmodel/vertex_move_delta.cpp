#include "blockmodel/vertex_move_delta.hpp"

#include <cassert>

#include "blockmodel/simd_kernels.hpp"
#include "blockmodel/xlogx_table.hpp"

namespace hsbp::blockmodel {

MoveScratch& thread_move_scratch() noexcept {
  static thread_local MoveScratch scratch;
  return scratch;
}

NeighborBlockCounts gather_neighbor_blocks(
    const graph::GraphView& graph, std::span<const std::int32_t> assignment,
    graph::Vertex v) {
  return gather_neighbor_blocks_view(
      graph,
      [assignment](graph::Vertex u) {
        return assignment[static_cast<std::size_t>(u)];
      },
      v);
}

Count MoveDelta::new_value(const Blockmodel& b, BlockId row,
                           BlockId col) const {
  Count value = b.matrix().get(row, col);
  for (const CellDelta& cd : cell_deltas) {
    if (cd.row == row && cd.col == col) value += cd.delta;
  }
  return value;
}

void vertex_move_delta_into(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb,
                            MoveScratch& scratch) {
  assert(from != to);
  auto& cells = scratch.delta.cell_deltas;
  auto& batch = scratch.batch;
  cells.clear();
  scratch.set_move(from, to);

  // Out-edges touch only rows from/to, in-edges only columns from/to,
  // and self-loops only the diagonal — so contributions can overlap
  // solely on the four corner cells {from,to}×{from,to}. Splitting
  // those four into scalar accumulators makes every other cell unique,
  // and the cell list becomes pure appends: non-corner out pairs, then
  // non-corner in pairs, then the nonzero corners. That order is the
  // canonical cell order (DESIGN §13) the reference kernels and the
  // batched Hastings rescan both rely on.
  //
  // Each cell's (pre, post) value pair is staged as the cell is built —
  // one indexed probe of a hoisted from/to slice per cell — keeping
  // old_vals/new_vals aligned with the cell list; the batched Hastings
  // correction reads the staged values back instead of re-probing the
  // matrix.
  const DictTransposeMatrix& m = b.matrix();
  const FlatSlice& row_from = m.row(from);
  const FlatSlice& row_to = m.row(to);
  const FlatSlice& col_from = m.col(from);
  const FlatSlice& col_to = m.col(to);
  const std::size_t max_cells = 2 * (nb.out.size() + nb.in.size()) + 4;
  if (batch.old_vals.size() < max_cells) {
    batch.old_vals.resize(max_cells);
    batch.new_vals.resize(max_cells);
  }
  std::size_t n = 0;
  const auto stage = [&](BlockId row, BlockId col, Count delta, Count old_v) {
    assert(old_v + delta >= 0);
    cells.push_back({row, col, delta});
    batch.old_vals[n] = old_v;
    batch.new_vals[n] = old_v + delta;
    ++n;
  };

  Count ko_f = 0, ko_t = 0, ki_f = 0, ki_t = 0;
  for (const auto& [t, k] : nb.out) {
    if (t == from) {
      ko_f = k;
    } else if (t == to) {
      ko_t = k;
    } else {
      stage(from, t, -k, row_from.get(t));
      stage(to, t, +k, row_to.get(t));
    }
  }
  for (const auto& [t, k] : nb.in) {
    if (t == from) {
      ki_f = k;
    } else if (t == to) {
      ki_t = k;
    } else {
      stage(t, from, -k, col_from.get(t));
      stage(t, to, +k, col_to.get(t));
    }
  }
  const Count self = nb.self_loops;
  const Count d_ff = -(ko_f + ki_f + self);
  const Count d_tf = ko_f - ki_t;
  const Count d_ft = ki_f - ko_t;
  const Count d_tt = ko_t + ki_t + self;
  scratch.set_corners(d_ff, d_tf, d_ft, d_tt);
  if (d_ff != 0) stage(from, from, d_ff, row_from.get(from));
  if (d_tf != 0) stage(to, from, d_tf, row_to.get(from));
  if (d_ft != 0) stage(from, to, d_ft, row_from.get(to));
  if (d_tt != 0) stage(to, to, d_tt, row_to.get(to));

  // Reduce with the batched xlogx kernel: term order is the cell order,
  // and the reduction uses the canonical strided-4 accumulation (DESIGN
  // §13), which the reference kernels mirror — results stay
  // bit-identical across dispatch levels.
  const double delta_cells =
      simd::xlogx_diff_sum(batch.new_vals.data(), batch.old_vals.data(), n);

  const auto degree_delta = [](Count before_from, Count before_to, Count k) {
    return xlogx_count(before_from - k) - xlogx_count(before_from) +
           xlogx_count(before_to + k) - xlogx_count(before_to);
  };
  const double delta_degrees =
      degree_delta(b.degree_out(from), b.degree_out(to), nb.degree_out) +
      degree_delta(b.degree_in(from), b.degree_in(to), nb.degree_in);

  // ΔL = Δcells − Δdegrees; ΔMDL = −ΔL (model term unchanged).
  scratch.delta.delta_mdl = -(delta_cells - delta_degrees);
}

Count move_new_value(const Blockmodel& b, const MoveScratch& scratch,
                     BlockId row, BlockId col) noexcept {
  const Count value = b.matrix().get(row, col);
  const BlockId from = scratch.move_from();
  const BlockId to = scratch.move_to();
  if (row == from) {
    if (col == from) return value + scratch.corner_ff();
    if (col == to) return value + scratch.corner_ft();
    return value - scratch.out_count(col);
  }
  if (row == to) {
    if (col == from) return value + scratch.corner_tf();
    if (col == to) return value + scratch.corner_tt();
    return value + scratch.out_count(col);
  }
  if (col == from) return value - scratch.in_count(row);
  if (col == to) return value + scratch.in_count(row);
  return value;
}

MoveDelta vertex_move_delta(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb) {
  MoveScratch& scratch = thread_move_scratch();
  vertex_move_delta_into(b, from, to, nb, scratch);
  return scratch.delta;
}

}  // namespace hsbp::blockmodel
