#include "blockmodel/vertex_move_delta.hpp"

#include <cassert>

#include "blockmodel/xlogx_table.hpp"

namespace hsbp::blockmodel {

MoveScratch& thread_move_scratch() noexcept {
  static thread_local MoveScratch scratch;
  return scratch;
}

NeighborBlockCounts gather_neighbor_blocks(
    const graph::Graph& graph, std::span<const std::int32_t> assignment,
    graph::Vertex v) {
  return gather_neighbor_blocks_view(
      graph,
      [assignment](graph::Vertex u) {
        return assignment[static_cast<std::size_t>(u)];
      },
      v);
}

Count MoveDelta::new_value(const Blockmodel& b, BlockId row,
                           BlockId col) const {
  Count value = b.matrix().get(row, col);
  for (const CellDelta& cd : cell_deltas) {
    if (cd.row == row && cd.col == col) value += cd.delta;
  }
  return value;
}

namespace {

/// Canonical (lane, partner) encoding of a changed cell. Every cell a
/// move from→to touches has its row or column in {from, to}; testing in
/// this fixed order makes the encoding injective, so one stamp slot
/// identifies one cell.
inline std::pair<int, BlockId> cell_lane(BlockId row, BlockId col,
                                         BlockId from, BlockId to) noexcept {
  if (row == from) return {MoveScratch::kRowFrom, col};
  if (row == to) return {MoveScratch::kRowTo, col};
  if (col == from) return {MoveScratch::kColFrom, row};
  return {MoveScratch::kColTo, row};  // col == to
}

}  // namespace

void vertex_move_delta_into(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb,
                            MoveScratch& scratch) {
  assert(from != to);
  auto& cells = scratch.delta.cell_deltas;
  cells.clear();
  scratch.begin_epoch();
  scratch.set_move(from, to);

  const auto add_cell = [&](BlockId row, BlockId col, Count delta) {
    const auto [lane, partner] = cell_lane(row, col, from, to);
    std::int32_t& s = scratch.slot(partner, lane);
    if (s < 0) {
      s = static_cast<std::int32_t>(cells.size());
      cells.push_back({row, col, delta});
    } else {
      cells[static_cast<std::size_t>(s)].delta += delta;
    }
  };

  // Out-edges v→u (u keeps its block t): (from,t) loses, (to,t) gains.
  for (const auto& [t, k] : nb.out) {
    add_cell(from, t, -k);
    add_cell(to, t, +k);
  }
  // In-edges u→v: (t,from) loses, (t,to) gains.
  for (const auto& [t, k] : nb.in) {
    add_cell(t, from, -k);
    add_cell(t, to, +k);
  }
  // Self-loops move diagonally.
  if (nb.self_loops > 0) {
    add_cell(from, from, -nb.self_loops);
    add_cell(to, to, +nb.self_loops);
  }

  double delta_cells = 0.0;
  for (const CellDelta& cd : cells) {
    if (cd.delta == 0) continue;
    const Count old_value = b.matrix().get(cd.row, cd.col);
    const Count new_value = old_value + cd.delta;
    assert(new_value >= 0);
    delta_cells += xlogx_count(new_value) - xlogx_count(old_value);
  }

  const auto degree_delta = [](Count before_from, Count before_to, Count k) {
    return xlogx_count(before_from - k) - xlogx_count(before_from) +
           xlogx_count(before_to + k) - xlogx_count(before_to);
  };
  const double delta_degrees =
      degree_delta(b.degree_out(from), b.degree_out(to), nb.degree_out) +
      degree_delta(b.degree_in(from), b.degree_in(to), nb.degree_in);

  // ΔL = Δcells − Δdegrees; ΔMDL = −ΔL (model term unchanged).
  scratch.delta.delta_mdl = -(delta_cells - delta_degrees);
}

Count move_new_value(const Blockmodel& b, const MoveScratch& scratch,
                     BlockId row, BlockId col) noexcept {
  const Count value = b.matrix().get(row, col);
  const BlockId from = scratch.move_from();
  const BlockId to = scratch.move_to();
  if (row != from && row != to && col != from && col != to) return value;
  const auto [lane, partner] = cell_lane(row, col, from, to);
  const std::int32_t s = scratch.slot_or_empty(partner, lane);
  if (s < 0) return value;
  return value +
         scratch.delta.cell_deltas[static_cast<std::size_t>(s)].delta;
}

MoveDelta vertex_move_delta(const Blockmodel& b, BlockId from, BlockId to,
                            const NeighborBlockCounts& nb) {
  MoveScratch& scratch = thread_move_scratch();
  vertex_move_delta_into(b, from, to, nb, scratch);
  return scratch.delta;
}

}  // namespace hsbp::blockmodel
