/// \file fig4a_synthetic_nmi.cpp
/// \brief Paper Fig. 4a: NMI of SBP / H-SBP / A-SBP on the synthetic
/// suite. Expected shape (paper): A-SBP matches SBP on roughly half the
/// graphs and fails to converge on others (notably the weak-structure
/// r = 1.5 groups S17–S24); H-SBP matches SBP wherever SBP converges.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.003, 2);
  hsbp::eval::print_banner("Fig. 4a: NMI on synthetic graphs",
                           options.scale, options.runs, std::cout);

  const auto entries =
      hsbp::generator::synthetic_suite(options.scale, options.seed);
  const auto rows =
      hsbp::bench::run_suite(entries, hsbp::bench::all_variants(), options);

  hsbp::eval::print_quality_table(rows, std::cout);

  // Summary in the paper's terms: per graph, does each parallel variant
  // match the baseline within 0.05 NMI?
  int hybrid_matches = 0, async_matches = 0, graphs = 0;
  for (std::size_t i = 0; i + 2 < rows.size(); i += 3) {
    const double base = rows[i].nmi;
    hybrid_matches += (rows[i + 1].nmi >= base - 0.05);
    async_matches += (rows[i + 2].nmi >= base - 0.05);
    ++graphs;
  }
  std::cout << "H-SBP matches SBP on " << hybrid_matches << "/" << graphs
            << " graphs; A-SBP on " << async_matches << "/" << graphs
            << " (paper: H-SBP all, A-SBP ~10/18).\n";
  hsbp::bench::maybe_write_csv(options, rows);
  return 0;
}
