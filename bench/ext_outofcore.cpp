/// \file ext_outofcore.cpp
/// \brief Extension bench: the out-of-core divide-and-conquer fit
/// against the in-memory baseline — peak RSS, per-stage wall time, and
/// quality (NMI vs ground truth and vs the baseline's partition).
///
/// ru_maxrss is a process-wide high-water mark, so a fit measured in
/// the process that generated the graph would inherit the generator's
/// footprint. The bench therefore re-execs itself (/proc/self/exe)
/// twice: one child materializes the full Graph on the heap and runs
/// the configured sbp variant, the other mmaps the binary CSR and runs
/// ooc::fit with the page-eviction hook wired up. Each child's
/// ru_maxrss is then an honest measurement of that path alone. The
/// parent generates the graph, converts it once, scores both
/// assignments, and emits a JSON object on stdout (and to --json FILE).
///
/// Flags: the common --scale/--seed/--threads/--only set
/// (bench_common.hpp; --only picks the synthetic suite entry, default
/// S13) plus --budget-mb N (0 = quarter of the CSR estimate),
/// --pieces K, --skeleton-frac F, --finetune-iters N, --json FILE.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/partition_io.hpp"
#include "graph/binary_csr.hpp"
#include "graph/mmap_graph.hpp"
#include "metrics/metrics.hpp"
#include "ooc/ooc.hpp"
#include "sample/samplers.hpp"
#include "util/timer.hpp"

namespace {

using namespace hsbp;

/// Re-execs this binary with the given arguments and waits; returns
/// the child's exit code (or -1 when spawn/wait itself failed).
int run_child(const std::vector<std::string>& arguments) {
  std::vector<char*> argv;
  argv.reserve(arguments.size() + 1);
  for (const auto& argument : arguments) {
    argv.push_back(const_cast<char*>(argument.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execv("/proc/self/exe", argv.data());
    std::perror("execv /proc/self/exe");
    _exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Child → parent metrics: one "key value" line per entry.
void write_result_file(const std::string& path,
                       const std::map<std::string, double>& values) {
  std::ofstream out(path);
  out.precision(10);
  for (const auto& [key, value] : values) out << key << " " << value << "\n";
}

std::map<std::string, double> read_result_file(const std::string& path) {
  std::ifstream in(path);
  std::map<std::string, double> values;
  std::string key;
  double value = 0.0;
  while (in >> key >> value) values[key] = value;
  return values;
}

sbp::SbpConfig child_base_config(const util::Args& args) {
  sbp::SbpConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.num_threads = static_cast<int>(args.get_int("threads", 0));
  return config;
}

/// Child A: the in-memory baseline. Loads the CSR, materializes the
/// full Graph on the heap (edge list + CSR build — what any in-memory
/// run pays), and fits it.
int child_inmem(const util::Args& args) {
  const std::string csr = args.get_string("csr", "");
  graph::Graph materialized = [&csr] {
    const graph::MmapGraph mapped(csr);
    const graph::GraphView view = mapped.view();
    std::vector<graph::Edge> edges;
    edges.reserve(static_cast<std::size_t>(view.num_edges()));
    for (graph::Vertex v = 0; v < view.num_vertices(); ++v) {
      for (const graph::Vertex u : view.out_neighbors(v)) {
        edges.emplace_back(v, u);
      }
    }
    return graph::Graph::from_edges(view.num_vertices(), edges);
  }();

  util::Timer timer;
  const sbp::SbpResult result =
      sbp::run(materialized, child_base_config(args));
  const double seconds = timer.elapsed();

  eval::save_assignment_file(result.assignment,
                             args.get_string("assignment-out", ""));
  write_result_file(args.get_string("result-out", ""),
                    {{"peak_rss_kb", static_cast<double>(ooc::peak_rss_kb())},
                     {"total_seconds", seconds},
                     {"mdl", result.mdl},
                     {"blocks", static_cast<double>(result.num_blocks)}});
  return 0;
}

/// Child B: the out-of-core path. Never holds the full graph on the
/// heap — the mapped CSR is the only full-graph state, and the fit's
/// release hook keeps its residency down.
int child_ooc(const util::Args& args) {
  const graph::MmapGraph mapped(args.get_string("csr", ""));

  ooc::OocConfig config;
  config.base = child_base_config(args);
  config.sampler = sample::SamplerKind::DegreeWeighted;
  config.skeleton_fraction = args.get_double("skeleton-frac", 0.3);
  config.memory_budget_mb = args.get_int("budget-mb", 0);
  config.pieces = static_cast<int>(args.get_int("pieces", 0));
  config.finetune_max_iterations =
      static_cast<int>(args.get_int("finetune-iters", 10));
  config.release_cache = [&mapped] { mapped.evict(); };

  const ooc::OocResult result = ooc::fit(mapped.view(), config);

  eval::save_assignment_file(result.assignment,
                             args.get_string("assignment-out", ""));
  write_result_file(
      args.get_string("result-out", ""),
      {{"peak_rss_kb", static_cast<double>(ooc::peak_rss_kb())},
       {"total_seconds", result.timings.total_seconds},
       {"skeleton_seconds", result.timings.skeleton_seconds},
       {"extrapolate_seconds", result.timings.extrapolate_seconds},
       {"pieces_seconds", result.timings.pieces_seconds},
       {"finetune_seconds", result.timings.finetune_seconds},
       {"mdl", result.mdl},
       {"blocks", static_cast<double>(result.num_blocks)},
       {"pieces_planned", static_cast<double>(result.pieces_planned)},
       {"pieces_refit", static_cast<double>(result.pieces_refit)}});
  return 0;
}

std::string temp_name(const char* stem, std::uint64_t seed) {
  std::ostringstream path;
  path << "/tmp/ext_outofcore_" << ::getpid() << "_" << seed << "_" << stem;
  return path.str();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string child = args.get_string("child", "");
  if (child == "inmem") return child_inmem(args);
  if (child == "ooc") return child_ooc(args);
  if (!child.empty()) {
    std::fprintf(stderr, "unknown --child mode '%s'\n", child.c_str());
    return 2;
  }

  bench::BenchOptions options = bench::parse_options(argc, argv, 0.01, 1);
  if (options.only.empty()) options.only = "S13";
  const std::string json_path = args.get_string("json", "");

  const auto entries = generator::synthetic_suite(options.scale, options.seed);
  const generator::SuiteEntry* entry = nullptr;
  for (const auto& candidate : entries) {
    if (candidate.id == options.only) entry = &candidate;
  }
  if (entry == nullptr) {
    std::fprintf(stderr, "no synthetic suite entry named %s\n",
                 options.only.c_str());
    return 2;
  }

  const std::string csr = temp_name("graph.csr", options.seed);
  std::vector<std::int32_t> ground_truth;
  graph::Vertex num_vertices = 0;
  graph::EdgeCount num_edges = 0;
  {
    const auto generated = generator::generate(*entry);
    ground_truth = generated.ground_truth;
    num_vertices = generated.graph.num_vertices();
    num_edges = generated.graph.num_edges();
    graph::write_binary_csr(generated.graph, csr);
  }
  const std::int64_t csr_bytes = ooc::estimated_csr_bytes(num_vertices,
                                                          num_edges);
  std::int64_t budget_mb = args.get_int("budget-mb", 0);
  if (budget_mb <= 0) {
    budget_mb = std::max<std::int64_t>(1, csr_bytes / 4 / (1024 * 1024));
  }
  std::fprintf(stderr, "%s: V=%d E=%lld csr=%lld bytes budget=%lld MiB\n",
               entry->id.c_str(), num_vertices,
               static_cast<long long>(num_edges),
               static_cast<long long>(csr_bytes),
               static_cast<long long>(budget_mb));

  const std::string inmem_assignment = temp_name("inmem.part", options.seed);
  const std::string inmem_result = temp_name("inmem.result", options.seed);
  const std::string ooc_assignment = temp_name("ooc.part", options.seed);
  const std::string ooc_result = temp_name("ooc.result", options.seed);
  const std::string seed_flag = std::to_string(options.seed);
  const std::string threads_flag = std::to_string(options.threads);

  int rc = run_child({argv[0], "--child", "inmem", "--csr", csr, "--seed",
                      seed_flag, "--threads", threads_flag,
                      "--assignment-out", inmem_assignment, "--result-out",
                      inmem_result});
  if (rc != 0) {
    std::fprintf(stderr, "in-memory child failed (exit %d)\n", rc);
    return 1;
  }
  rc = run_child({argv[0], "--child", "ooc", "--csr", csr, "--seed",
                  seed_flag, "--threads", threads_flag, "--budget-mb",
                  std::to_string(budget_mb), "--pieces",
                  std::to_string(args.get_int("pieces", 0)),
                  "--skeleton-frac",
                  std::to_string(args.get_double("skeleton-frac", 0.3)),
                  "--finetune-iters",
                  std::to_string(args.get_int("finetune-iters", 10)),
                  "--assignment-out", ooc_assignment, "--result-out",
                  ooc_result});
  if (rc != 0) {
    std::fprintf(stderr, "out-of-core child failed (exit %d)\n", rc);
    return 1;
  }

  const auto inmem = read_result_file(inmem_result);
  const auto ooc_metrics = read_result_file(ooc_result);
  const auto inmem_labels = eval::load_assignment_file(inmem_assignment);
  const auto ooc_labels = eval::load_assignment_file(ooc_assignment);
  const double nmi_inmem = metrics::nmi(ground_truth, inmem_labels);
  const double nmi_ooc = metrics::nmi(ground_truth, ooc_labels);
  const double nmi_agreement = metrics::nmi(inmem_labels, ooc_labels);
  const double rss_ratio =
      inmem.at("peak_rss_kb") > 0.0
          ? ooc_metrics.at("peak_rss_kb") / inmem.at("peak_rss_kb")
          : 0.0;

  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"graph\": \"" << entry->id << "\", \"vertices\": "
       << num_vertices << ", \"edges\": " << num_edges
       << ", \"csr_bytes\": " << csr_bytes
       << ", \"budget_mb\": " << budget_mb << ",\n"
       << "  \"inmem\": {\"peak_rss_kb\": " << inmem.at("peak_rss_kb")
       << ", \"total_seconds\": " << inmem.at("total_seconds")
       << ", \"mdl\": " << inmem.at("mdl")
       << ", \"blocks\": " << inmem.at("blocks")
       << ", \"nmi\": " << nmi_inmem << "},\n"
       << "  \"ooc\": {\"peak_rss_kb\": " << ooc_metrics.at("peak_rss_kb")
       << ", \"total_seconds\": " << ooc_metrics.at("total_seconds")
       << ", \"skeleton_seconds\": " << ooc_metrics.at("skeleton_seconds")
       << ", \"extrapolate_seconds\": "
       << ooc_metrics.at("extrapolate_seconds")
       << ", \"pieces_seconds\": " << ooc_metrics.at("pieces_seconds")
       << ", \"finetune_seconds\": " << ooc_metrics.at("finetune_seconds")
       << ", \"mdl\": " << ooc_metrics.at("mdl")
       << ", \"blocks\": " << ooc_metrics.at("blocks")
       << ", \"pieces_planned\": " << ooc_metrics.at("pieces_planned")
       << ", \"pieces_refit\": " << ooc_metrics.at("pieces_refit")
       << ", \"nmi\": " << nmi_ooc << "},\n"
       << "  \"nmi_ooc_vs_inmem\": " << nmi_agreement
       << ", \"rss_ratio\": " << rss_ratio << "\n"
       << "}\n";
  std::fputs(json.str().c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::fprintf(stderr, "result written to %s\n", json_path.c_str());
  }

  std::fprintf(stderr,
               "peak RSS: inmem %.0f KiB, ooc %.0f KiB (%.2fx); "
               "NMI vs truth: inmem %.3f, ooc %.3f; agreement %.3f\n",
               inmem.at("peak_rss_kb"), ooc_metrics.at("peak_rss_kb"),
               rss_ratio, nmi_inmem, nmi_ooc, nmi_agreement);

  std::remove(csr.c_str());
  std::remove(inmem_assignment.c_str());
  std::remove(inmem_result.c_str());
  std::remove(ooc_assignment.c_str());
  std::remove(ooc_result.c_str());
  return 0;
}
