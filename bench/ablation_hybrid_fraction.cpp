/// \file ablation_hybrid_fraction.cpp
/// \brief Ablation of H-SBP's one tunable: the fraction of high-degree
/// vertices processed serially. f = 0 degenerates to A-SBP's update
/// pattern, f = 1 to fully serial MH; the paper fixes f = 0.15. The
/// sweep shows the accuracy/parallelism trade-off that choice buys.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 2);
  hsbp::eval::print_banner("Ablation: H-SBP high-degree fraction f",
                           options.scale, options.runs, std::cout);

  // A weak-structure graph — the regime where pure A-SBP struggles and
  // the serial pass earns its keep.
  hsbp::generator::DcsbmParams params;
  params.num_vertices = 600;
  params.num_communities = 8;
  params.num_edges = 5000;
  params.ratio_within_between = 2.0;
  params.degree_exponent = 2.1;
  params.max_degree = 80;
  params.seed = options.seed;
  auto generated = hsbp::generator::generate_dcsbm(params);
  generated.name = "weak-structure";

  hsbp::util::Table table({"fraction", "NMI", "MDL_norm", "blocks",
                           "mcmc_s", "mcmc_iters", "parallel_frac"});
  for (const double fraction : {0.0, 0.05, 0.15, 0.30, 0.60, 1.0}) {
    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    config.variant = hsbp::sbp::Variant::Hybrid;
    config.hybrid_fraction = fraction;
    const auto row = hsbp::eval::run_experiment(
        generated, hsbp::sbp::Variant::Hybrid, config, options.runs);
    table.row()
        .cell(fraction, 2)
        .cell(row.nmi, 3)
        .cell(row.mdl_norm, 3)
        .cell(static_cast<std::int64_t>(row.num_blocks))
        .cell(row.mcmc_seconds, 3)
        .cell(row.mcmc_iterations)
        .cell(row.parallel_update_fraction, 3);
    std::fprintf(stderr, "  f=%.2f done\n", fraction);
  }
  table.print(std::cout);
  std::cout << "expected shape: quality stabilizes once a small serial "
               "fraction handles the influential vertices; parallel_frac "
               "falls linearly with f.\n";
  return 0;
}
