/// \file ext_streaming_warmstart.cpp
/// \brief Extension experiment: the Streaming Graph Challenge workload
/// (paper ref [9]) driven by H-SBP. Measures, per streaming part, the
/// wall time and quality of warm-started re-partitioning vs fitting the
/// snapshot from scratch — the saving that makes streaming SBP viable.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "sbp/streaming.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 1);
  const hsbp::util::Args args(argc, argv);
  const int parts = static_cast<int>(args.get_int("parts", 4));

  hsbp::eval::print_banner(
      "Extension: streaming SBP — warm start vs from scratch",
      options.scale, options.runs, std::cout);

  hsbp::generator::DcsbmParams params;
  params.num_vertices = 800;
  params.num_communities = 8;
  params.num_edges = 8000;
  params.ratio_within_between = 4.0;
  params.seed = options.seed;
  const auto generated = hsbp::generator::generate_dcsbm(params);

  hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
  config.variant = hsbp::sbp::Variant::Hybrid;

  for (const auto order : {hsbp::generator::StreamingOrder::EdgeSampling,
                           hsbp::generator::StreamingOrder::Snowball}) {
    const char* order_name =
        order == hsbp::generator::StreamingOrder::EdgeSampling
            ? "edge-sampling"
            : "snowball";
    const auto stream = hsbp::generator::streaming_snapshots(
        generated, parts, order, options.seed + 1);

    hsbp::util::Table table({"part", "V", "E", "warm_s", "cold_s",
                             "saving", "warm_NMI", "cold_NMI"});

    // Warm chain, timed per part (same logic as run_streaming, unrolled
    // so each part's wall time is captured separately).
    std::vector<double> warm_seconds;
    std::vector<hsbp::sbp::SbpResult> warm_results;
    for (std::size_t i = 0; i < stream.snapshots.size(); ++i) {
      hsbp::util::Timer part_timer;
      if (i == 0 || warm_results.back().num_blocks <= 2) {
        warm_results.push_back(hsbp::sbp::run(stream.snapshots[i], config));
      } else {
        auto blocks = warm_results.back().num_blocks;
        const auto extended = hsbp::sbp::extend_assignment(
            stream.snapshots[i], warm_results.back().assignment, blocks);
        const auto warm_assignment = hsbp::sbp::refine_assignment(
            extended, blocks, 3, config.seed + i);
        warm_results.push_back(hsbp::sbp::run_warm(
            stream.snapshots[i], config, warm_assignment, blocks));
      }
      warm_seconds.push_back(part_timer.elapsed());
    }

    for (std::size_t i = 0; i < stream.snapshots.size(); ++i) {
      hsbp::util::Timer cold_timer;
      const auto cold = hsbp::sbp::run(stream.snapshots[i], config);
      const double cold_s = cold_timer.elapsed();

      const auto arrived = static_cast<std::size_t>(
          stream.snapshots[i].num_vertices());
      const std::vector<std::int32_t> truth(
          stream.ground_truth.begin(),
          stream.ground_truth.begin() +
              static_cast<std::ptrdiff_t>(arrived));
      table.row()
          .cell(static_cast<std::int64_t>(i + 1))
          .cell(static_cast<std::int64_t>(
              stream.snapshots[i].num_vertices()))
          .cell(stream.snapshots[i].num_edges())
          .cell(warm_seconds[i], 3)
          .cell(cold_s, 3)
          .cell(cold_s > 0 ? cold_s / std::max(warm_seconds[i], 1e-9) : 0.0,
                2)
          .cell(hsbp::metrics::nmi(truth, warm_results[i].assignment), 3)
          .cell(hsbp::metrics::nmi(truth, cold.assignment), 3);
      std::fprintf(stderr, "  %s part %zu done\n", order_name, i + 1);
    }
    std::cout << "-- order: " << order_name << " --\n";
    table.print(std::cout);
  }
  std::cout << "expected shape: warm-started parts (after the first) run "
               "faster than cold fits at matching NMI — the streaming "
               "saving.\n";
  return 0;
}
