/// \file ablation_threshold.cpp
/// \brief The paper's §5.6 optimization note: "a relaxed threshold"
/// could cut the extra MCMC iterations the asynchronous variants incur.
/// This bench sweeps the convergence threshold t for H-SBP and reports
/// the quality/runtime trade-off, alongside the baseline SBP reference.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 2);
  hsbp::eval::print_banner(
      "Ablation: MCMC convergence threshold t (H-SBP)", options.scale,
      options.runs, std::cout);

  hsbp::generator::DcsbmParams params;
  params.num_vertices = 600;
  params.num_communities = 8;
  params.num_edges = 6000;
  params.ratio_within_between = 4.0;
  params.seed = options.seed;
  auto generated = hsbp::generator::generate_dcsbm(params);
  generated.name = "threshold-sweep";

  const auto baseline = hsbp::eval::run_experiment(
      generated, hsbp::sbp::Variant::Metropolis,
      hsbp::bench::base_config(options), options.runs);

  hsbp::util::Table table({"threshold", "NMI", "MDL_norm", "mcmc_s",
                           "mcmc_iters", "mcmc_speedup_vs_SBP"});
  table.row()
      .cell(std::string("SBP (5e-4/1e-4)"))
      .cell(baseline.nmi, 3)
      .cell(baseline.mdl_norm, 3)
      .cell(baseline.mcmc_seconds, 3)
      .cell(baseline.mcmc_iterations)
      .cell(1.0, 2);

  for (const double t : {1e-5, 1e-4, 5e-4, 2e-3, 1e-2}) {
    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    config.variant = hsbp::sbp::Variant::Hybrid;
    config.mcmc_threshold_pre_bracket = 5.0 * t;
    config.mcmc_threshold_post_bracket = t;
    const auto row = hsbp::eval::run_experiment(
        generated, hsbp::sbp::Variant::Hybrid, config, options.runs);
    char label[32];
    std::snprintf(label, sizeof(label), "H-SBP t=%.0e", t);
    table.row()
        .cell(std::string(label))
        .cell(row.nmi, 3)
        .cell(row.mdl_norm, 3)
        .cell(row.mcmc_seconds, 3)
        .cell(row.mcmc_iterations)
        .cell(row.mcmc_seconds > 0
                  ? baseline.mcmc_seconds / row.mcmc_seconds
                  : 0.0,
              2);
    std::fprintf(stderr, "  t=%.0e done\n", t);
  }
  table.print(std::cout);
  std::cout << "expected shape: relaxing t cuts iterations (and raises "
               "speedup) with little quality loss until t gets too "
               "coarse — the paper's proposed iteration-count fix.\n";
  return 0;
}
