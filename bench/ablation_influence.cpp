/// \file ablation_influence.cpp
/// \brief Connects the paper's theory section to its empirical findings:
/// on small graphs where the naive O(V²C³) total-influence α of
/// De Sa et al. is still computable, sweep the community-strength ratio
/// r and report α next to how well A-SBP converges relative to SBP.
/// Also verifies the degree↔influence assumption behind H-SBP (§3.2)
/// by correlating vertex degree with exerted influence.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/degree.hpp"
#include "metrics/metrics.hpp"
#include "sbp/influence.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 2);
  hsbp::eval::print_banner(
      "Ablation: total influence alpha vs A-SBP convergence",
      options.scale, options.runs, std::cout);

  hsbp::util::Table table({"r", "alpha", "deg-influence_corr", "SBP_NMI",
                           "ASBP_NMI", "ASBP_match"});
  for (const double ratio : {1.2, 2.0, 3.0, 5.0, 8.0}) {
    hsbp::generator::DcsbmParams params;
    params.num_vertices = 90;
    params.num_communities = 4;
    params.num_edges = 700;
    params.ratio_within_between = ratio;
    params.seed = options.seed + static_cast<std::uint64_t>(ratio * 10);
    auto generated = hsbp::generator::generate_dcsbm(params);
    generated.name = "alpha-sweep";

    const auto influence = hsbp::sbp::total_influence(
        generated.graph, generated.ground_truth, params.num_communities,
        3.0);

    // Degree ↔ exerted-influence correlation (H-SBP's assumption).
    std::vector<double> degrees, exerted;
    for (hsbp::graph::Vertex v = 0; v < generated.graph.num_vertices();
         ++v) {
      degrees.push_back(static_cast<double>(generated.graph.degree(v)));
      exerted.push_back(
          influence.influence_of[static_cast<std::size_t>(v)]);
    }
    const auto correlation = hsbp::util::pearson(degrees, exerted);

    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    const auto base = hsbp::eval::run_experiment(
        generated, hsbp::sbp::Variant::Metropolis, config, options.runs);
    const auto async = hsbp::eval::run_experiment(
        generated, hsbp::sbp::Variant::AsyncGibbs, config, options.runs);

    table.row()
        .cell(ratio, 1)
        .cell(influence.alpha, 2)
        .cell(correlation.r, 3)
        .cell(base.nmi, 3)
        .cell(async.nmi, 3)
        .cell(async.nmi >= base.nmi - 0.05 ? std::string("yes")
                                           : std::string("no"));
    std::fprintf(stderr, "  r=%.1f done\n", ratio);
  }
  table.print(std::cout);
  std::cout << "expected shape: degree-influence correlation strongly "
               "positive (H-SBP's premise); alpha >> 1 everywhere at this "
               "size, which is why the paper falls back to the degree "
               "heuristic instead of thresholding alpha.\n";
  return 0;
}
