/// \file fig7_strong_scaling.cpp
/// \brief Paper Fig. 7: strong scaling of the H-SBP MCMC phase on
/// soc-Slashdot0902, 1–128 threads (paper: monotone improvement,
/// tapering past 16 threads). The sweep is clamped to what the host can
/// express; counts beyond the physical cores are still run (and
/// labeled) so oversubscription effects are visible.
///
/// Tracked-benchmark mode: `--json PATH` writes one machine-readable
/// entry per thread count, which scripts/bench_kernels.sh folds into
/// BENCH_kernels.json; `--schedule static|dynamic|guided|degree-sorted`
/// selects the async-pass loop schedule (DESIGN §13) so the static
/// baseline and the degree-aware schedules can be compared on the same
/// skewed-degree graph.
#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sbp/schedule.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.005, 1);
  const hsbp::util::Args args(argc, argv);
  const int hardware = omp_get_max_threads();
  const int max_threads =
      static_cast<int>(args.get_int("max-threads", std::max(hardware, 4)));
  const std::string json_path = args.get_string("json", "");
  const std::string schedule_arg = args.get_string("schedule", "static");
  const auto schedule = hsbp::sbp::parse_schedule(schedule_arg);
  if (!schedule) {
    std::fprintf(stderr,
                 "unknown --schedule '%s' (expected static|dynamic|guided|"
                 "degree-sorted)\n",
                 schedule_arg.c_str());
    return 2;
  }

  hsbp::eval::print_banner(
      "Fig. 7: strong scaling of H-SBP MCMC runtime on soc-Slashdot0902",
      options.scale, options.runs, std::cout);
  std::cout << "hardware threads: " << hardware
            << "  schedule: " << hsbp::sbp::schedule_name(*schedule) << "\n";

  // Locate the soc-Slashdot0902 surrogate (a skewed-degree graph: the
  // degree-aware schedules exist precisely for its hub-heavy tail).
  const auto entries = hsbp::generator::realworld_surrogate_suite(
      options.scale, options.seed);
  const hsbp::generator::SuiteEntry* slashdot = nullptr;
  for (const auto& entry : entries) {
    if (entry.id == "soc-Slashdot0902") slashdot = &entry;
  }
  if (slashdot == nullptr) return 1;
  const auto generated = hsbp::generator::generate(*slashdot);

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  struct Entry {
    int threads;
    double mcmc_s;
    double total_s;
    std::int64_t iters;
    double speedup;
    bool oversubscribed;
  };
  std::vector<Entry> results;

  hsbp::util::Table table({"threads", "mcmc_s", "total_s", "mcmc_iters",
                           "speedup_vs_1t", "oversubscribed"});
  double baseline = 0.0;
  for (const int threads : thread_counts) {
    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    config.variant = hsbp::sbp::Variant::Hybrid;
    config.num_threads = threads;
    config.schedule = *schedule;
    const auto outcome =
        hsbp::eval::best_of(generated.graph, config, options.runs);
    if (baseline == 0.0) baseline = outcome.total_mcmc_seconds;
    const double speedup = outcome.total_mcmc_seconds > 0
                               ? baseline / outcome.total_mcmc_seconds
                               : 0.0;
    results.push_back({threads, outcome.total_mcmc_seconds,
                       outcome.total_seconds, outcome.total_mcmc_iterations,
                       speedup, threads > hardware});
    table.row()
        .cell(static_cast<std::int64_t>(threads))
        .cell(outcome.total_mcmc_seconds, 3)
        .cell(outcome.total_seconds, 3)
        .cell(outcome.total_mcmc_iterations)
        .cell(speedup, 2)
        .cell(threads > hardware ? std::string("yes") : std::string("no"));
    std::fprintf(stderr, "  threads=%d done (%.2fs)\n", threads,
                 outcome.total_mcmc_seconds);
  }
  table.print(std::cout);
  std::cout << "paper shape: runtime decreases with threads, tapering "
               "around 16; on this host only the non-oversubscribed rows "
               "are meaningful.\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"dataset\": \"soc-Slashdot0902\",\n"
                 "  \"scale\": %g,\n  \"runs\": %d,\n"
                 "  \"schedule\": \"%s\",\n  \"entries\": [\n",
                 options.scale, options.runs,
                 hsbp::sbp::schedule_name(*schedule));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Entry& e = results[i];
      std::fprintf(f,
                   "    {\"threads\": %d, \"mcmc_s\": %.6f, "
                   "\"total_s\": %.6f, \"mcmc_iters\": %lld, "
                   "\"speedup_vs_1t\": %.4f, \"oversubscribed\": %s}%s\n",
                   e.threads, e.mcmc_s, e.total_s,
                   static_cast<long long>(e.iters), e.speedup,
                   e.oversubscribed ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "json written to %s\n", json_path.c_str());
  }
  return 0;
}
