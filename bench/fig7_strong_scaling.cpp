/// \file fig7_strong_scaling.cpp
/// \brief Paper Fig. 7: strong scaling of the H-SBP MCMC phase on
/// soc-Slashdot0902, 1–128 threads (paper: monotone improvement,
/// tapering past 16 threads). The sweep is clamped to what the host can
/// express; counts beyond the physical cores are still run (and
/// labeled) so oversubscription effects are visible.
#include <omp.h>

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.005, 1);
  const hsbp::util::Args args(argc, argv);
  const int hardware = omp_get_max_threads();
  const int max_threads =
      static_cast<int>(args.get_int("max-threads", std::max(hardware, 4)));

  hsbp::eval::print_banner(
      "Fig. 7: strong scaling of H-SBP MCMC runtime on soc-Slashdot0902",
      options.scale, options.runs, std::cout);
  std::cout << "hardware threads: " << hardware << "\n";

  // Locate the soc-Slashdot0902 surrogate.
  const auto entries = hsbp::generator::realworld_surrogate_suite(
      options.scale, options.seed);
  const hsbp::generator::SuiteEntry* slashdot = nullptr;
  for (const auto& entry : entries) {
    if (entry.id == "soc-Slashdot0902") slashdot = &entry;
  }
  if (slashdot == nullptr) return 1;
  const auto generated = hsbp::generator::generate(*slashdot);

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  hsbp::util::Table table({"threads", "mcmc_s", "total_s", "mcmc_iters",
                           "speedup_vs_1t", "oversubscribed"});
  double baseline = 0.0;
  for (const int threads : thread_counts) {
    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    config.variant = hsbp::sbp::Variant::Hybrid;
    config.num_threads = threads;
    const auto outcome =
        hsbp::eval::best_of(generated.graph, config, options.runs);
    if (baseline == 0.0) baseline = outcome.total_mcmc_seconds;
    table.row()
        .cell(static_cast<std::int64_t>(threads))
        .cell(outcome.total_mcmc_seconds, 3)
        .cell(outcome.total_seconds, 3)
        .cell(outcome.total_mcmc_iterations)
        .cell(outcome.total_mcmc_seconds > 0
                  ? baseline / outcome.total_mcmc_seconds
                  : 0.0,
              2)
        .cell(threads > hardware ? std::string("yes") : std::string("no"));
    std::fprintf(stderr, "  threads=%d done (%.2fs)\n", threads,
                 outcome.total_mcmc_seconds);
  }
  table.print(std::cout);
  std::cout << "paper shape: runtime decreases with threads, tapering "
               "around 16; on this host only the non-oversubscribed rows "
               "are meaningful.\n";
  return 0;
}
