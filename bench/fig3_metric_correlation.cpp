/// \file fig3_metric_correlation.cpp
/// \brief Paper Fig. 3: across synthetic-graph runs, NMI correlates
/// with Modularity (paper: r² = 0.75, p = 1.6e-14) and more strongly
/// with normalized MDL (paper: r² = 0.85, p = 1.9e-19). Since MDL_norm
/// decreases as quality rises, the paper's correlation is against
/// (1 − MDL_norm) direction; we report r² which is sign-free, plus the
/// signed r for orientation.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.003, 1);
  hsbp::eval::print_banner("Fig. 3: NMI vs Modularity / normalized MDL",
                           options.scale, options.runs, std::cout);

  // All variants over the synthetic suite gives a spread of qualities —
  // exactly the scatter the paper's figure is built from.
  const auto entries =
      hsbp::generator::synthetic_suite(options.scale, options.seed);
  const auto rows =
      hsbp::bench::run_suite(entries, hsbp::bench::all_variants(), options);

  std::vector<double> nmi, modularity, mdl_norm;
  for (const auto& row : rows) {
    if (row.nmi < 0) continue;  // no ground truth (cannot happen here)
    nmi.push_back(row.nmi);
    modularity.push_back(row.modularity);
    mdl_norm.push_back(row.mdl_norm);
  }

  const auto c_mod = hsbp::util::pearson(modularity, nmi);
  const auto c_mdl = hsbp::util::pearson(mdl_norm, nmi);

  hsbp::util::Table table({"pair", "n", "r", "r^2", "p_value"});
  table.row()
      .cell("NMI vs Modularity")
      .cell(static_cast<std::int64_t>(nmi.size()))
      .cell(c_mod.r, 3)
      .cell(c_mod.r_squared, 3)
      .cell(c_mod.p_value, 6);
  table.row()
      .cell("NMI vs MDL_norm")
      .cell(static_cast<std::int64_t>(nmi.size()))
      .cell(c_mdl.r, 3)
      .cell(c_mdl.r_squared, 3)
      .cell(c_mdl.p_value, 6);
  table.print(std::cout);
  std::cout << "paper: r^2 = 0.75 (Modularity), r^2 = 0.85 (MDL_norm); "
               "expected shape: |r^2(MDL_norm)| >= |r^2(Modularity)|, "
               "r(MDL_norm) negative.\n";
  return 0;
}
