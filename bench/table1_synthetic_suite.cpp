/// \file table1_synthetic_suite.cpp
/// \brief Paper Table 1: the 24 synthetic DCSBM graphs. Prints the
/// paper's published (V, E) per graph next to the scaled realization
/// this harness actually generates, plus the realized within:between
/// ratio — the generator-level ground truth every later figure builds
/// on.
#include <iostream>

#include "bench_common.hpp"
#include "generator/dcsbm.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.003, 1);
  hsbp::eval::print_banner("Table 1: synthetic graph suite", options.scale,
                           options.runs, std::cout);

  hsbp::util::Table table({"ID", "paper_V", "paper_E", "V", "E", "C",
                           "requested_r", "realized_r", "deg_exp"});
  for (const auto& entry :
       hsbp::generator::synthetic_suite(options.scale, options.seed)) {
    if (!options.only.empty() && entry.id != options.only) continue;
    const auto generated = hsbp::generator::generate(entry);
    table.row()
        .cell(entry.id)
        .cell(static_cast<std::int64_t>(entry.paper_vertices))
        .cell(entry.paper_edges)
        .cell(static_cast<std::int64_t>(generated.graph.num_vertices()))
        .cell(generated.graph.num_edges())
        .cell(static_cast<std::int64_t>(entry.params.num_communities))
        .cell(entry.params.ratio_within_between, 2)
        .cell(hsbp::generator::realized_within_ratio(generated.graph,
                                                     generated.ground_truth),
              2)
        .cell(entry.params.degree_exponent, 1);
  }
  table.print(std::cout);
  return 0;
}
