/// \file fig8_mcmc_iterations.cpp
/// \brief Paper Fig. 8: MCMC iterations to convergence. Expected shape:
/// on synthetic graphs A-SBP and H-SBP need notably more passes than
/// SBP (8a); on real-world graphs the gap mostly vanishes except on
/// barth5 (8b).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.002, 1);

  hsbp::eval::print_banner("Fig. 8a: MCMC iterations on synthetic graphs",
                           options.scale, options.runs, std::cout);
  const auto synthetic =
      hsbp::generator::synthetic_suite(options.scale, options.seed);
  const auto synthetic_rows = hsbp::bench::run_suite(
      synthetic, hsbp::bench::all_variants(), options);
  hsbp::eval::print_iteration_table(synthetic_rows, std::cout);

  hsbp::eval::print_banner("Fig. 8b: MCMC iterations on real-world graphs",
                           options.scale, options.runs, std::cout);
  const auto realworld = hsbp::generator::realworld_surrogate_suite(
      options.scale, options.seed);
  const auto realworld_rows = hsbp::bench::run_suite(
      realworld,
      {hsbp::sbp::Variant::Metropolis, hsbp::sbp::Variant::Hybrid}, options);
  hsbp::eval::print_iteration_table(realworld_rows, std::cout);

  std::cout << "paper shape: asynchronous processing raises iteration "
               "counts on synthetic graphs far more than on real-world "
               "ones.\n";
  auto all_rows = synthetic_rows;
  all_rows.insert(all_rows.end(), realworld_rows.begin(),
                  realworld_rows.end());
  hsbp::bench::maybe_write_csv(options, all_rows);
  return 0;
}
