/// \file fig5_realworld_quality.cpp
/// \brief Paper Fig. 5: normalized MDL (5a) and Modularity (5b) of SBP
/// vs H-SBP on the real-world graphs. Expected shape: H-SBP matches SBP
/// on every graph; p2p-Gnutella31 shows MDL_norm ≈ 1 (no structure).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.002, 2);
  hsbp::eval::print_banner(
      "Fig. 5: quality on real-world graphs (SBP vs H-SBP)", options.scale,
      options.runs, std::cout);

  const auto entries = hsbp::generator::realworld_surrogate_suite(
      options.scale, options.seed);
  const auto rows = hsbp::bench::run_suite(
      entries,
      {hsbp::sbp::Variant::Metropolis, hsbp::sbp::Variant::Hybrid}, options);

  hsbp::eval::print_quality_table(rows, std::cout);

  int matches = 0, graphs = 0;
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    matches += (rows[i + 1].mdl_norm <= rows[i].mdl_norm + 0.02);
    ++graphs;
  }
  std::cout << "H-SBP matches SBP MDL_norm on " << matches << "/" << graphs
            << " graphs (paper: all).\n";
  hsbp::bench::maybe_write_csv(options, rows);
  return 0;
}
