/// \file fig4b_synthetic_speedup.cpp
/// \brief Paper Fig. 4b: MCMC-phase speedup of A-SBP and H-SBP over SBP
/// on the synthetic suite (paper: A-SBP 1.7–7.6×, H-SBP up to 2.7× on
/// 128 cores). On a small-core machine the measured wall-clock ratio
/// mostly reflects iteration-count differences; the parallel_frac
/// column is the Amdahl input that scales to the paper's numbers
/// (see EXPERIMENTS.md).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.003, 2);
  hsbp::eval::print_banner("Fig. 4b: MCMC-phase speedup on synthetic graphs",
                           options.scale, options.runs, std::cout);

  const auto entries =
      hsbp::generator::synthetic_suite(options.scale, options.seed);
  const auto rows =
      hsbp::bench::run_suite(entries, hsbp::bench::all_variants(), options);

  hsbp::eval::print_speedup_table(rows, std::cout);
  std::cout << "paper shape: A-SBP fastest MCMC phase, H-SBP in between, "
               "speedups hold whether or not A-SBP converges.\n";
  hsbp::bench::maybe_write_csv(options, rows);
  return 0;
}
