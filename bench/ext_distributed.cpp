/// \file ext_distributed.cpp
/// \brief Extension experiment for the paper's final future-work item:
/// distributing A-SBP/H-SBP. The simulated distributed runtime
/// (src/dist/) preserves the protocol a real MPI port would run, so
/// this bench reports what matters for sizing one: result-quality
/// parity with shared-memory A-SBP, communication volume per collective
/// and its scaling with rank count, and the effect of the partitioning
/// strategy on load balance.
#include <iostream>

#include "bench_common.hpp"
#include "dist/dist_sbp.hpp"
#include "metrics/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 1);
  hsbp::eval::print_banner(
      "Extension: simulated distributed SBP (D-SBP)", options.scale,
      options.runs, std::cout);

  hsbp::generator::DcsbmParams params;
  params.num_vertices = 800;
  params.num_communities = 8;
  params.num_edges = 8000;
  params.ratio_within_between = 4.0;
  params.degree_exponent = 2.1;
  params.max_degree = 120;
  params.seed = options.seed;
  const auto g = hsbp::generator::generate_dcsbm(params);

  // Shared-memory A-SBP reference.
  hsbp::sbp::SbpConfig reference = hsbp::bench::base_config(options);
  reference.variant = hsbp::sbp::Variant::AsyncGibbs;
  const auto asbp = hsbp::sbp::run(g.graph, reference);
  const double asbp_nmi = hsbp::metrics::nmi(g.ground_truth, asbp.assignment);
  std::printf("shared-memory A-SBP reference: NMI %.3f, %lld MCMC passes\n",
              asbp_nmi,
              static_cast<long long>(asbp.stats.mcmc_iterations));

  // Rank sweep at the default (degree-balanced) partitioning.
  hsbp::util::Table ranks_table(
      {"ranks", "NMI", "mcmc_iters", "updates_MB", "rebuild_MB",
       "bcast_MB", "total_MB", "imbalance"});
  for (const int ranks : {1, 2, 4, 8, 16}) {
    hsbp::dist::DistributedConfig config;
    config.base = hsbp::bench::base_config(options);
    config.ranks = ranks;
    const auto out = hsbp::dist::run_distributed(g.graph, config);
    const auto mb = [](std::int64_t bytes) {
      return static_cast<double>(bytes) / (1024.0 * 1024.0);
    };
    ranks_table.row()
        .cell(static_cast<std::int64_t>(ranks))
        .cell(hsbp::metrics::nmi(g.ground_truth, out.result.assignment), 3)
        .cell(out.result.stats.mcmc_iterations)
        .cell(mb(out.comm.bytes_of(
                  hsbp::dist::CollectiveKind::AllGatherUpdates)),
              3)
        .cell(mb(out.comm.bytes_of(
                  hsbp::dist::CollectiveKind::RebuildAllReduce)),
              3)
        .cell(mb(out.comm.bytes_of(
                  hsbp::dist::CollectiveKind::AssignmentBcast)),
              3)
        .cell(mb(out.comm.total_bytes()), 3)
        .cell(out.partition_imbalance, 2);
    std::fprintf(stderr, "  ranks=%d done\n", ranks);
  }
  std::cout << "-- rank sweep (degree-balanced partition) --\n";
  ranks_table.print(std::cout);

  // Partition-strategy comparison at 8 ranks.
  hsbp::util::Table strategy_table(
      {"strategy", "NMI", "imbalance", "max_rank_share"});
  for (const auto strategy :
       {hsbp::dist::PartitionStrategy::Range,
        hsbp::dist::PartitionStrategy::RoundRobin,
        hsbp::dist::PartitionStrategy::DegreeBalanced}) {
    hsbp::dist::DistributedConfig config;
    config.base = hsbp::bench::base_config(options);
    config.ranks = 8;
    config.strategy = strategy;
    const auto out = hsbp::dist::run_distributed(g.graph, config);
    std::int64_t total = 0, max_rank = 0;
    for (const auto a : out.rank_accepted) {
      total += a;
      max_rank = std::max(max_rank, a);
    }
    strategy_table.row()
        .cell(std::string(hsbp::dist::strategy_name(strategy)))
        .cell(hsbp::metrics::nmi(g.ground_truth, out.result.assignment), 3)
        .cell(out.partition_imbalance, 2)
        .cell(total > 0 ? static_cast<double>(max_rank) /
                              static_cast<double>(total)
                        : 0.0,
              3);
    std::fprintf(stderr, "  %s done\n",
                 hsbp::dist::strategy_name(strategy));
  }
  std::cout << "-- partition strategies (8 ranks) --\n";
  strategy_table.print(std::cout);
  std::cout << "expected shape: quality parity with shared-memory A-SBP at "
               "every rank count; update volume roughly rank-independent "
               "(it tracks accepted moves); degree-balanced partitioning "
               "keeps imbalance near 1.\n";
  return 0;
}
