/// \file ablation_selection.cpp
/// \brief Tests H-SBP's core assumption (§3.2): that the *high-degree*
/// vertices are the right ones to process serially. Compares the
/// paper's degree ranking against the edge-information-content ranking
/// of Kao et al. [10] and a random-fraction control, all at the same
/// 15% serial budget. If the degree heuristic is doing real work, the
/// random control should recover structure worse (or need more
/// iterations) in the weak-structure regime where A-SBP fails.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 3);
  hsbp::eval::print_banner("Ablation: H-SBP serial-set selection strategy",
                           options.scale, options.runs, std::cout);

  hsbp::generator::DcsbmParams params;
  params.num_vertices = 600;
  params.num_communities = 8;
  params.num_edges = 5000;
  params.ratio_within_between = 2.0;  // the regime where selection matters
  params.degree_exponent = 2.1;
  params.max_degree = 80;
  params.seed = options.seed;
  auto generated = hsbp::generator::generate_dcsbm(params);
  generated.name = "weak-structure";

  const auto baseline = hsbp::eval::run_experiment(
      generated, hsbp::sbp::Variant::Metropolis,
      hsbp::bench::base_config(options), options.runs);

  hsbp::util::Table table({"selection", "NMI", "MDL_norm", "mcmc_s",
                           "mcmc_iters"});
  table.row()
      .cell(std::string("(SBP baseline)"))
      .cell(baseline.nmi, 3)
      .cell(baseline.mdl_norm, 3)
      .cell(baseline.mcmc_seconds, 3)
      .cell(baseline.mcmc_iterations);

  for (const auto selection :
       {hsbp::sbp::HybridSelection::Degree,
        hsbp::sbp::HybridSelection::EdgeInfo,
        hsbp::sbp::HybridSelection::Random}) {
    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    config.variant = hsbp::sbp::Variant::Hybrid;
    config.hybrid_selection = selection;
    const auto row = hsbp::eval::run_experiment(
        generated, hsbp::sbp::Variant::Hybrid, config, options.runs);
    table.row()
        .cell(std::string(hsbp::sbp::selection_name(selection)))
        .cell(row.nmi, 3)
        .cell(row.mdl_norm, 3)
        .cell(row.mcmc_seconds, 3)
        .cell(row.mcmc_iterations);
    std::fprintf(stderr, "  %s done\n",
                 hsbp::sbp::selection_name(selection));
  }
  table.print(std::cout);
  std::cout << "expected shape: degree and edge-info selections track the "
               "SBP baseline; the random control gives up part of the "
               "quality the targeted serial pass buys.\n";
  return 0;
}
