/// \file bench_common.hpp
/// \brief Shared scaffolding for the figure/table reproduction benches.
///
/// Every bench accepts the same knobs:
///   --scale F    dataset scale relative to the paper (default per bench;
///                scale=1.0 reproduces the paper's sizes — hours of work)
///   --runs K     best-of-K runs per (graph, algorithm); the paper uses 5
///   --seed S     master seed
///   --threads T  OpenMP threads (0 = runtime default)
///   --only ID    restrict to one suite entry (e.g. --only S7)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "generator/suites.hpp"
#include "sbp/sbp.hpp"
#include "util/args.hpp"

namespace hsbp::bench {

struct BenchOptions {
  double scale = 0.003;
  int runs = 2;
  std::uint64_t seed = 1;
  int threads = 0;
  std::string only;
  std::string csv;  ///< optional path for machine-readable results
};

inline BenchOptions parse_options(int argc, char** argv,
                                  double default_scale, int default_runs) {
  const util::Args args(argc, argv);
  BenchOptions options;
  options.scale = args.get_double("scale", default_scale);
  options.runs = static_cast<int>(args.get_int("runs", default_runs));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.threads = static_cast<int>(args.get_int("threads", 0));
  options.only = args.get_string("only", "");
  options.csv = args.get_string("csv", "");
  return options;
}

/// Writes rows to options.csv when requested (each figure bench calls
/// this after its run so results are pipeable into plotting tools).
inline void maybe_write_csv(const BenchOptions& options,
                            const std::vector<eval::ExperimentRow>& rows) {
  if (options.csv.empty()) return;
  eval::write_rows_csv_file(rows, options.csv);
  std::fprintf(stderr, "rows written to %s\n", options.csv.c_str());
}

inline sbp::SbpConfig base_config(const BenchOptions& options) {
  sbp::SbpConfig config;
  config.seed = options.seed;
  config.num_threads = options.threads;
  return config;
}

/// Runs the given variants over the suite and returns one row per
/// (graph, variant), with progress on stderr so long benches stay
/// observable.
inline std::vector<eval::ExperimentRow> run_suite(
    const std::vector<generator::SuiteEntry>& entries,
    const std::vector<sbp::Variant>& variants, const BenchOptions& options) {
  const sbp::SbpConfig config = base_config(options);
  std::vector<eval::ExperimentRow> rows;
  for (const auto& entry : entries) {
    if (!options.only.empty() && entry.id != options.only) continue;
    const auto generated = generator::generate(entry);
    for (const auto variant : variants) {
      rows.push_back(
          eval::run_experiment(generated, variant, config, options.runs));
      std::fprintf(stderr, "  %-18s %-6s done (%.2fs)\n", entry.id.c_str(),
                   rows.back().algorithm.c_str(), rows.back().total_seconds);
    }
  }
  return rows;
}

inline const std::vector<sbp::Variant>& all_variants() {
  static const std::vector<sbp::Variant> variants = {
      sbp::Variant::Metropolis, sbp::Variant::Hybrid,
      sbp::Variant::AsyncGibbs};
  return variants;
}

}  // namespace hsbp::bench
