/// \file ext_sampling.cpp
/// \brief Extension bench: the SamBaS sampling pipeline swept over
/// sample fraction × sampler × algorithm against the full-graph fit.
///
/// For each algorithm the full-graph run is the baseline; every
/// pipeline configuration reports NMI, full-graph MDL, speedup over
/// that baseline, and the per-stage timing breakdown (the sampling
/// counterpart of Fig. 2). Results are emitted as a JSON array on
/// stdout (and to --json FILE when given) so they pipe straight into
/// plotting tools.
///
/// Flags: the common --scale/--runs/--seed/--threads/--only set
/// (bench_common.hpp; --only picks the synthetic suite entry, default
/// S2) plus --json FILE.
#include <cstdio>
#include <sstream>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "sample/sample_sbp.hpp"

namespace {

std::string json_row(const std::string& graph_id,
                                 const char* algorithm, const char* sampler,
                                 double fraction, double nmi, double mdl,
                                 double mdl_norm, double speedup,
                                 const hsbp::sample::StageTimings& t) {
  std::ostringstream row;
  row.precision(6);
  row << "  {\"graph\": \"" << graph_id << "\", \"algorithm\": \""
      << algorithm << "\", \"sampler\": \"" << sampler
      << "\", \"fraction\": " << fraction << ", \"nmi\": " << nmi
      << ", \"mdl\": " << mdl << ", \"mdl_norm\": " << mdl_norm
      << ", \"speedup\": " << speedup
      << ", \"sample_seconds\": " << t.sample_seconds
      << ", \"partition_seconds\": " << t.partition_seconds
      << ", \"extrapolate_seconds\": " << t.extrapolate_seconds
      << ", \"finetune_seconds\": " << t.finetune_seconds
      << ", \"total_seconds\": " << t.total_seconds << "}";
  return row.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsbp;

  bench::BenchOptions options = bench::parse_options(argc, argv, 0.003, 1);
  if (options.only.empty()) options.only = "S2";
  const util::Args args(argc, argv);
  const std::string json_path = args.get_string("json", "");

  const auto entries =
      generator::synthetic_suite(options.scale, options.seed);
  const generator::SuiteEntry* entry = nullptr;
  for (const auto& candidate : entries) {
    if (candidate.id == options.only) entry = &candidate;
  }
  if (entry == nullptr) {
    std::fprintf(stderr, "no synthetic suite entry named %s\n",
                 options.only.c_str());
    return 2;
  }
  const auto generated = generator::generate(*entry);
  std::fprintf(stderr, "%s: V=%d E=%lld\n", generated.name.c_str(),
               generated.graph.num_vertices(),
               static_cast<long long>(generated.graph.num_edges()));

  const std::vector<sbp::Variant> algorithms = {sbp::Variant::Hybrid,
                                                sbp::Variant::AsyncGibbs};
  const std::vector<double> fractions = {0.1, 0.25, 0.5, 0.75};

  std::vector<std::string> rows;
  for (const sbp::Variant variant : algorithms) {
    sbp::SbpConfig base = bench::base_config(options);
    base.variant = variant;

    const auto full = sbp::run(generated.graph, base);
    const double full_nmi =
        metrics::nmi(generated.ground_truth, full.assignment);
    sample::StageTimings full_timings;
    full_timings.partition_seconds = full.stats.total_seconds;
    full_timings.total_seconds = full.stats.total_seconds;
    rows.push_back(json_row(
        generated.name, sbp::variant_name(variant), "none", 1.0, full_nmi,
        full.mdl,
        metrics::normalized_mdl(full.mdl, generated.graph.num_vertices(),
                                generated.graph.num_edges()),
        1.0, full_timings));
    std::fprintf(stderr, "  %-6s full      NMI %.3f (%.2fs)\n",
                 sbp::variant_name(variant), full_nmi,
                 full.stats.total_seconds);

    for (const double fraction : fractions) {
      for (const sample::SamplerKind kind : sample::all_sampler_kinds()) {
        sample::SampleConfig config;
        config.base = base;
        config.sampler = kind;
        config.fraction = fraction;
        const auto result = sample::run(generated.graph, config);
        const double nmi =
            metrics::nmi(generated.ground_truth, result.assignment);
        const double speedup =
            result.timings.total_seconds > 0.0
                ? full.stats.total_seconds / result.timings.total_seconds
                : 0.0;
        rows.push_back(json_row(
            generated.name, sbp::variant_name(variant),
            sample::sampler_name(kind), fraction, nmi, result.mdl,
            metrics::normalized_mdl(result.mdl,
                                    generated.graph.num_vertices(),
                                    generated.graph.num_edges()),
            speedup, result.timings));
        std::fprintf(stderr,
                     "  %-6s %-8s f=%.2f NMI %.3f speedup %.2fx\n",
                     sbp::variant_name(variant), sample::sampler_name(kind),
                     fraction, nmi, speedup);
      }
    }
  }

  std::ostringstream json;
  json << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << rows[i] << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "]\n";
  std::fputs(json.str().c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::fprintf(stderr, "rows written to %s\n", json_path.c_str());
  }
  return 0;
}
