/// \file fig2_phase_breakdown.cpp
/// \brief Paper Fig. 2: the share of SBP execution time spent in the
/// MCMC phase vs. the block-merge phase + rest, per synthetic graph.
/// The paper reports the MCMC phase at up to 98% of total runtime — the
/// observation motivating the whole work.
#include <iostream>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

/// `--algorithm` names match the CLI's: sbp, asbp, hsbp, bsbp.
hsbp::sbp::Variant parse_variant(const std::string& name) {
  if (name == "sbp") return hsbp::sbp::Variant::Metropolis;
  if (name == "asbp") return hsbp::sbp::Variant::AsyncGibbs;
  if (name == "hsbp") return hsbp::sbp::Variant::Hybrid;
  if (name == "bsbp") return hsbp::sbp::Variant::BatchedGibbs;
  throw std::invalid_argument("unknown algorithm '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.003, 1);
  const auto variant = parse_variant(
      hsbp::util::Args(argc, argv).get_string("algorithm", "sbp"));
  hsbp::eval::print_banner(
      "Fig. 2: SBP execution-time breakdown on synthetic graphs",
      options.scale, options.runs, std::cout);

  const auto entries =
      hsbp::generator::synthetic_suite(options.scale, options.seed);
  const auto rows = hsbp::bench::run_suite(entries, {variant}, options);

  hsbp::util::Table table(
      {"ID", "mcmc_s", "merge+other_s", "mcmc_pct", "merge+other_pct"});
  double max_pct = 0.0;
  for (const auto& row : rows) {
    const double rest = row.total_seconds - row.mcmc_seconds;
    const double pct =
        row.total_seconds > 0 ? 100.0 * row.mcmc_seconds / row.total_seconds
                              : 0.0;
    max_pct = std::max(max_pct, pct);
    table.row()
        .cell(row.graph_id)
        .cell(row.mcmc_seconds, 3)
        .cell(rest, 3)
        .cell(pct, 1)
        .cell(100.0 - pct, 1);
  }
  table.print(std::cout);
  std::cout << "max MCMC share: " << hsbp::util::format_double(max_pct, 1)
            << "% (paper: up to 98%)\n";
  hsbp::bench::maybe_write_csv(options, rows);
  return 0;
}
