/// \file bm_kernels.cpp
/// \brief google-benchmark micro benches for the kernels every SBP
/// variant is built from: neighbor gathering, ΔMDL for moves and
/// merges, proposal drawing, Hastings correction, in-place vertex
/// moves, full-matrix rebuild, and MDL evaluation. These are the
/// numbers to watch when optimizing — the paper's future-work section
/// calls out rebuild cost and data-structure choice explicitly.
#include <benchmark/benchmark.h>

#include <omp.h>

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/dense_matrix.hpp"
#include "blockmodel/mdl.hpp"
#include "blockmodel/merge_delta.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "blockmodel/xlogx_table.hpp"
#include "generator/dcsbm.hpp"
#include "sbp/async_pass.hpp"
#include "sbp/hastings.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/mcmc_phases.hpp"
#include "sbp/proposal.hpp"
#include "util/rng.hpp"

// The gather/move-delta/Hastings benches measure the kernels exactly as
// the phase loops invoke them. With the scratch-arena API present that
// is the allocation-free *_into path; in older trees (this file doubles
// as the before/after probe for the perf harness) it is the original
// allocate-per-call path — each tree benches its own hot path.
#if __has_include("blockmodel/flat_slice.hpp")
#define HSBP_BENCH_HAVE_SCRATCH 1
#endif

namespace {

using hsbp::blockmodel::BlockId;
using hsbp::blockmodel::Blockmodel;
using hsbp::graph::Vertex;

struct Fixture {
  hsbp::generator::GeneratedGraph generated;
  Blockmodel blockmodel;

  explicit Fixture(Vertex vertices, std::int32_t communities,
                   hsbp::graph::EdgeCount edges) {
    hsbp::generator::DcsbmParams params;
    params.num_vertices = vertices;
    params.num_communities = communities;
    params.num_edges = edges;
    params.ratio_within_between = 3.0;
    params.seed = 1234;
    generated = hsbp::generator::generate_dcsbm(params);
    blockmodel = Blockmodel::from_assignment(
        generated.graph, generated.ground_truth, communities);
  }
};

Fixture& fixture() {
  static Fixture f(2000, 16, 20000);
  return f;
}

void BM_GatherNeighborBlocks(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(1);
#ifdef HSBP_BENCH_HAVE_SCRATCH
  hsbp::blockmodel::MoveScratch scratch;
  const auto assignment = f.blockmodel.assignment();
  const hsbp::blockmodel::FlatMembershipView view{assignment.data()};
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    hsbp::blockmodel::gather_neighbor_blocks_into(f.generated.graph, view, v,
                                                  scratch);
    benchmark::DoNotOptimize(scratch.nb.degree_total());
  }
#else
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    benchmark::DoNotOptimize(hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v));
  }
#endif
}
BENCHMARK(BM_GatherNeighborBlocks);

void BM_VertexMoveDelta(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(2);
#ifdef HSBP_BENCH_HAVE_SCRATCH
  hsbp::blockmodel::MoveScratch scratch;
  const auto assignment = f.blockmodel.assignment();
  const hsbp::blockmodel::FlatMembershipView view{assignment.data()};
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    hsbp::blockmodel::gather_neighbor_blocks_into(f.generated.graph, view, v,
                                                  scratch);
    hsbp::blockmodel::vertex_move_delta_into(f.blockmodel, from, to,
                                             scratch.nb, scratch);
    benchmark::DoNotOptimize(scratch.delta.delta_mdl);
  }
#else
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    benchmark::DoNotOptimize(
        hsbp::blockmodel::vertex_move_delta(f.blockmodel, from, to, nb));
  }
#endif
}
BENCHMARK(BM_VertexMoveDelta);

void BM_ProposeBlock(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(3);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    benchmark::DoNotOptimize(hsbp::sbp::propose_block(
        f.blockmodel, nb, f.blockmodel.block_of(v), false, rng));
  }
}
BENCHMARK(BM_ProposeBlock);

void BM_HastingsCorrection(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(4);
#ifdef HSBP_BENCH_HAVE_SCRATCH
  hsbp::blockmodel::MoveScratch scratch;
  const auto assignment = f.blockmodel.assignment();
  const hsbp::blockmodel::FlatMembershipView view{assignment.data()};
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    hsbp::blockmodel::gather_neighbor_blocks_into(f.generated.graph, view, v,
                                                  scratch);
    hsbp::blockmodel::vertex_move_delta_into(f.blockmodel, from, to,
                                             scratch.nb, scratch);
    benchmark::DoNotOptimize(
        hsbp::sbp::hastings_correction(f.blockmodel, from, to, scratch));
  }
#else
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    const auto delta =
        hsbp::blockmodel::vertex_move_delta(f.blockmodel, from, to, nb);
    benchmark::DoNotOptimize(
        hsbp::sbp::hastings_correction(f.blockmodel, nb, from, to, delta));
  }
#endif
}
BENCHMARK(BM_HastingsCorrection);

void BM_MoveVertexRoundTrip(benchmark::State& state) {
  auto f = Fixture(2000, 16, 20000);  // private copy: we mutate it
  hsbp::util::Rng rng(5);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    if (f.blockmodel.block_size(from) <= 1) continue;
    f.blockmodel.move_vertex(f.generated.graph, v, to);
    f.blockmodel.move_vertex(f.generated.graph, v, from);
  }
}
BENCHMARK(BM_MoveVertexRoundTrip);

void BM_MergeDelta(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(6);
  for (auto _ : state) {
    const auto from = static_cast<BlockId>(rng.uniform_int(16));
    const auto to = static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    benchmark::DoNotOptimize(hsbp::blockmodel::merge_delta_mdl(
        f.blockmodel, from, to, f.generated.graph.num_vertices(),
        f.generated.graph.num_edges()));
  }
}
BENCHMARK(BM_MergeDelta);

// ---- full-pass kernels: one whole sweep over the vertex set, the
// granularity the phase loops actually run at. These aggregate the
// micro kernels above plus everything between them (scratch reuse,
// slice iteration, RNG streams), so they are the guard against a
// "micro benches improved, passes regressed" outcome.

void BM_AsyncPass(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::RngPool rngs(11, 8);
  std::vector<Vertex> vertices(2000);
  for (Vertex v = 0; v < 2000; ++v) vertices[static_cast<std::size_t>(v)] = v;
  hsbp::sbp::detail::PassWorkspace ws;
  for (auto _ : state) {
    ws.reset(f.blockmodel);
    benchmark::DoNotOptimize(hsbp::sbp::detail::async_pass(
        f.generated.graph, f.blockmodel, ws, vertices, 3.0, rngs));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_AsyncPass);

void BM_SerialMhPass(benchmark::State& state) {
  auto f = Fixture(2000, 16, 20000);  // private copy: the pass mutates it
  hsbp::util::RngPool rngs(12, 1);
  const auto view = [&f](Vertex u) { return f.blockmodel.block_of(u); };
  for (auto _ : state) {
    for (Vertex v = 0; v < 2000; ++v) {
      const auto result = hsbp::sbp::evaluate_vertex(
          f.generated.graph, f.blockmodel, view, v,
          f.blockmodel.block_size(f.blockmodel.block_of(v)), 3.0,
          rngs.stream(0));
      if (result.moved) f.blockmodel.move_vertex(f.generated.graph, v, result.to);
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SerialMhPass);

void BM_RebuildBlockmodel(benchmark::State& state) {
  auto f = Fixture(static_cast<Vertex>(state.range(0)), 16,
                   static_cast<hsbp::graph::EdgeCount>(state.range(0)) * 10);
  const auto assignment = f.blockmodel.copy_assignment();
  for (auto _ : state) {
    f.blockmodel.rebuild(f.generated.graph, assignment);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_RebuildBlockmodel)->Arg(500)->Arg(2000)->Arg(8000);

void BM_FullMdl(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsbp::blockmodel::mdl(f.blockmodel, f.generated.graph.num_vertices(),
                              f.generated.graph.num_edges()));
  }
}
BENCHMARK(BM_FullMdl);

void BM_IdentityBlockmodel(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blockmodel::identity(f.generated.graph));
  }
}
BENCHMARK(BM_IdentityBlockmodel);

// ---- pass-overhead benches (DESIGN §11): what it costs to carry the
// blockmodel from pass N to pass N+1, as a function of how much the
// pass moved. DeltaApply is the move-log path plus the now-O(1) MDL;
// ShardedRebuild is the adaptive fallback (sharded build + O(1) MDL);
// SerialMergeRebuild transcribes the previous per-pass overhead — the
// serial unordered_map merge plus the O(nnz) floating-point MDL rescan
// — so the before/after is measurable inside one tree. The Arg is the
// number of moved vertices per 1000 (permille of V).

void BM_PassOverhead_DeltaApply(benchmark::State& state) {
  auto f = Fixture(2000, 16, 20000);  // private copy: we mutate it
  const auto moved = static_cast<Vertex>(2000 * state.range(0) / 1000);
  // Synthesize a pass diff: `moved` vertices hop to the next block.
  // Forward-apply the log plus the MDL read, then roll back (excluded
  // work is symmetric) so every iteration applies the same diff.
  std::vector<std::pair<Vertex, BlockId>> log;
  log.reserve(static_cast<std::size_t>(moved));
  for (Vertex v = 0; v < moved; ++v) {
    log.emplace_back(v, f.blockmodel.block_of(v));
  }
  for (auto _ : state) {
    for (const auto& [v, from] : log) {
      f.blockmodel.move_vertex(f.generated.graph, v,
                               static_cast<BlockId>((from + 1) % 16));
    }
    benchmark::DoNotOptimize(
        hsbp::blockmodel::mdl(f.blockmodel, f.generated.graph.num_vertices(),
                              f.generated.graph.num_edges()));
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
      f.blockmodel.move_vertex(f.generated.graph, it->first, it->second);
    }
  }
  state.SetItemsProcessed(state.iterations() * std::max<Vertex>(moved, 1));
}
BENCHMARK(BM_PassOverhead_DeltaApply)->Arg(1)->Arg(10)->Arg(100)->Arg(300);

void BM_PassOverhead_ShardedRebuild(benchmark::State& state) {
  auto f = Fixture(2000, 16, 20000);  // private copy: rebuild mutates it
  const auto assignment = f.blockmodel.copy_assignment();
  for (auto _ : state) {
    f.blockmodel.rebuild(f.generated.graph, assignment);
    benchmark::DoNotOptimize(
        hsbp::blockmodel::mdl(f.blockmodel, f.generated.graph.num_vertices(),
                              f.generated.graph.num_edges()));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PassOverhead_ShardedRebuild);

void BM_PassOverhead_SerialMergeRebuild(benchmark::State& state) {
  auto& f = fixture();
  const auto& graph = f.generated.graph;
  const auto assignment = f.blockmodel.copy_assignment();
  const Vertex v_count = graph.num_vertices();
  const auto threads = static_cast<std::size_t>(omp_get_max_threads());
  using hsbp::blockmodel::Count;
  for (auto _ : state) {
    // Previous build_from: per-thread (row<<32 | col) hash maps merged
    // serially into the shared matrix, then serial degree sums.
    std::vector<std::unordered_map<std::uint64_t, Count>> locals(threads);
#pragma omp parallel
    {
      auto& local = locals[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static)
      for (Vertex v = 0; v < v_count; ++v) {
        const auto src = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
            assignment[static_cast<std::size_t>(v)]));
        for (const Vertex target : graph.out_neighbors(v)) {
          const auto dst = static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(
                  assignment[static_cast<std::size_t>(target)]));
          ++local[(src << 32) | dst];
        }
      }
    }
    hsbp::blockmodel::DictTransposeMatrix m(16);
    for (const auto& local : locals) {
      for (const auto& [key, count] : local) {
        m.add(static_cast<BlockId>(key >> 32),
              static_cast<BlockId>(key & 0xffffffffULL), count);
      }
    }
    std::vector<Count> d_out(16, 0);
    std::vector<Count> d_in(16, 0);
    for (BlockId r = 0; r < 16; ++r) {
      for (const auto& [col, count] : m.row(r)) {
        (void)col;
        d_out[static_cast<std::size_t>(r)] += count;
      }
      for (const auto& [row, count] : m.col(r)) {
        (void)row;
        d_in[static_cast<std::size_t>(r)] += count;
      }
    }
    // Previous MDL: O(nnz) floating-point rescan of the whole matrix.
    double cell_term = 0.0;
    double degree_term = 0.0;
    for (BlockId r = 0; r < 16; ++r) {
      for (const auto& [col, count] : m.row(r)) {
        (void)col;
        cell_term += hsbp::blockmodel::xlogx_count(count);
      }
      degree_term +=
          hsbp::blockmodel::xlogx_count(d_out[static_cast<std::size_t>(r)]);
      degree_term +=
          hsbp::blockmodel::xlogx_count(d_in[static_cast<std::size_t>(r)]);
    }
    benchmark::DoNotOptimize(cell_term - degree_term);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PassOverhead_SerialMergeRebuild);

// ---- end-to-end MCMC phase: passes include the per-pass maintenance,
// so this is where the delta-apply change shows up at the granularity
// the paper's figure 2 measures. threshold = 0 disables convergence so
// the Arg is exactly the number of passes run.

void BM_AsyncGibbsPhase(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::RngPool rngs(13, 8);
  hsbp::sbp::McmcSettings settings;
  settings.beta = 3.0;
  settings.threshold = 0.0;
  settings.max_iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Blockmodel b = f.blockmodel;  // each iteration restarts the chain
    const auto outcome =
        hsbp::sbp::async_gibbs_phase(f.generated.graph, b, settings, rngs);
    benchmark::DoNotOptimize(outcome.stats.accepted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2000);
}
BENCHMARK(BM_AsyncGibbsPhase)->Arg(2)->Arg(8);

// ---- sparse vs dense backend (paper future work: reconstruction-
// friendly data structures). The dense backend's add() is a single
// indexed store; the sparse one hashes twice. The crossover argument:
// dense wins once C is small enough for C² cells to fit caches.

void BM_SparseMatrixFill(benchmark::State& state) {
  const auto blocks = static_cast<BlockId>(state.range(0));
  hsbp::util::Rng rng(7);
  std::vector<std::pair<BlockId, BlockId>> cells(20000);
  for (auto& [r, c] : cells) {
    r = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
    c = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
  }
  for (auto _ : state) {
    hsbp::blockmodel::DictTransposeMatrix m(blocks);
    for (const auto& [r, c] : cells) m.add(r, c, 1);
    benchmark::DoNotOptimize(m.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SparseMatrixFill)->Arg(16)->Arg(128)->Arg(1024);

void BM_DenseMatrixFill(benchmark::State& state) {
  const auto blocks = static_cast<BlockId>(state.range(0));
  hsbp::util::Rng rng(7);
  std::vector<std::pair<BlockId, BlockId>> cells(20000);
  for (auto& [r, c] : cells) {
    r = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
    c = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
  }
  for (auto _ : state) {
    hsbp::blockmodel::DenseMatrix m(blocks);
    for (const auto& [r, c] : cells) m.add(r, c, 1);
    benchmark::DoNotOptimize(m.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_DenseMatrixFill)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
