/// \file bm_kernels.cpp
/// \brief google-benchmark micro benches for the kernels every SBP
/// variant is built from: neighbor gathering, ΔMDL for moves and
/// merges, proposal drawing, Hastings correction, in-place vertex
/// moves, full-matrix rebuild, and MDL evaluation. These are the
/// numbers to watch when optimizing — the paper's future-work section
/// calls out rebuild cost and data-structure choice explicitly.
#include <benchmark/benchmark.h>

#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/dense_matrix.hpp"
#include "blockmodel/mdl.hpp"
#include "blockmodel/merge_delta.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "generator/dcsbm.hpp"
#include "sbp/async_pass.hpp"
#include "sbp/hastings.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/proposal.hpp"
#include "util/rng.hpp"

// The gather/move-delta/Hastings benches measure the kernels exactly as
// the phase loops invoke them. With the scratch-arena API present that
// is the allocation-free *_into path; in older trees (this file doubles
// as the before/after probe for the perf harness) it is the original
// allocate-per-call path — each tree benches its own hot path.
#if __has_include("blockmodel/flat_slice.hpp")
#define HSBP_BENCH_HAVE_SCRATCH 1
#endif

namespace {

using hsbp::blockmodel::BlockId;
using hsbp::blockmodel::Blockmodel;
using hsbp::graph::Vertex;

struct Fixture {
  hsbp::generator::GeneratedGraph generated;
  Blockmodel blockmodel;

  explicit Fixture(Vertex vertices, std::int32_t communities,
                   hsbp::graph::EdgeCount edges) {
    hsbp::generator::DcsbmParams params;
    params.num_vertices = vertices;
    params.num_communities = communities;
    params.num_edges = edges;
    params.ratio_within_between = 3.0;
    params.seed = 1234;
    generated = hsbp::generator::generate_dcsbm(params);
    blockmodel = Blockmodel::from_assignment(
        generated.graph, generated.ground_truth, communities);
  }
};

Fixture& fixture() {
  static Fixture f(2000, 16, 20000);
  return f;
}

void BM_GatherNeighborBlocks(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(1);
#ifdef HSBP_BENCH_HAVE_SCRATCH
  hsbp::blockmodel::MoveScratch scratch;
  const auto assignment = f.blockmodel.assignment();
  const auto view = [assignment](Vertex u) {
    return assignment[static_cast<std::size_t>(u)];
  };
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    hsbp::blockmodel::gather_neighbor_blocks_into(f.generated.graph, view, v,
                                                  scratch);
    benchmark::DoNotOptimize(scratch.nb.degree_total());
  }
#else
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    benchmark::DoNotOptimize(hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v));
  }
#endif
}
BENCHMARK(BM_GatherNeighborBlocks);

void BM_VertexMoveDelta(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(2);
#ifdef HSBP_BENCH_HAVE_SCRATCH
  hsbp::blockmodel::MoveScratch scratch;
  const auto assignment = f.blockmodel.assignment();
  const auto view = [assignment](Vertex u) {
    return assignment[static_cast<std::size_t>(u)];
  };
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    hsbp::blockmodel::gather_neighbor_blocks_into(f.generated.graph, view, v,
                                                  scratch);
    hsbp::blockmodel::vertex_move_delta_into(f.blockmodel, from, to,
                                             scratch.nb, scratch);
    benchmark::DoNotOptimize(scratch.delta.delta_mdl);
  }
#else
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    benchmark::DoNotOptimize(
        hsbp::blockmodel::vertex_move_delta(f.blockmodel, from, to, nb));
  }
#endif
}
BENCHMARK(BM_VertexMoveDelta);

void BM_ProposeBlock(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(3);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    benchmark::DoNotOptimize(hsbp::sbp::propose_block(
        f.blockmodel, nb, f.blockmodel.block_of(v), false, rng));
  }
}
BENCHMARK(BM_ProposeBlock);

void BM_HastingsCorrection(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(4);
#ifdef HSBP_BENCH_HAVE_SCRATCH
  hsbp::blockmodel::MoveScratch scratch;
  const auto assignment = f.blockmodel.assignment();
  const auto view = [assignment](Vertex u) {
    return assignment[static_cast<std::size_t>(u)];
  };
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    hsbp::blockmodel::gather_neighbor_blocks_into(f.generated.graph, view, v,
                                                  scratch);
    hsbp::blockmodel::vertex_move_delta_into(f.blockmodel, from, to,
                                             scratch.nb, scratch);
    benchmark::DoNotOptimize(
        hsbp::sbp::hastings_correction(f.blockmodel, from, to, scratch));
  }
#else
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    const auto delta =
        hsbp::blockmodel::vertex_move_delta(f.blockmodel, from, to, nb);
    benchmark::DoNotOptimize(
        hsbp::sbp::hastings_correction(f.blockmodel, nb, from, to, delta));
  }
#endif
}
BENCHMARK(BM_HastingsCorrection);

void BM_MoveVertexRoundTrip(benchmark::State& state) {
  auto f = Fixture(2000, 16, 20000);  // private copy: we mutate it
  hsbp::util::Rng rng(5);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    if (f.blockmodel.block_size(from) <= 1) continue;
    f.blockmodel.move_vertex(f.generated.graph, v, to);
    f.blockmodel.move_vertex(f.generated.graph, v, from);
  }
}
BENCHMARK(BM_MoveVertexRoundTrip);

void BM_MergeDelta(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(6);
  for (auto _ : state) {
    const auto from = static_cast<BlockId>(rng.uniform_int(16));
    const auto to = static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    benchmark::DoNotOptimize(hsbp::blockmodel::merge_delta_mdl(
        f.blockmodel, from, to, f.generated.graph.num_vertices(),
        f.generated.graph.num_edges()));
  }
}
BENCHMARK(BM_MergeDelta);

// ---- full-pass kernels: one whole sweep over the vertex set, the
// granularity the phase loops actually run at. These aggregate the
// micro kernels above plus everything between them (scratch reuse,
// slice iteration, RNG streams), so they are the guard against a
// "micro benches improved, passes regressed" outcome.

void BM_AsyncPass(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::RngPool rngs(11, 8);
  std::vector<Vertex> vertices(2000);
  for (Vertex v = 0; v < 2000; ++v) vertices[static_cast<std::size_t>(v)] = v;
  for (auto _ : state) {
    auto shared =
        hsbp::sbp::detail::make_atomic_assignment(f.blockmodel.assignment());
    auto sizes = hsbp::sbp::detail::make_atomic_sizes(f.blockmodel);
    benchmark::DoNotOptimize(hsbp::sbp::detail::async_pass(
        f.generated.graph, f.blockmodel, shared, sizes, vertices, 3.0, rngs));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_AsyncPass);

void BM_SerialMhPass(benchmark::State& state) {
  auto f = Fixture(2000, 16, 20000);  // private copy: the pass mutates it
  hsbp::util::RngPool rngs(12, 1);
  const auto view = [&f](Vertex u) { return f.blockmodel.block_of(u); };
  for (auto _ : state) {
    for (Vertex v = 0; v < 2000; ++v) {
      const auto result = hsbp::sbp::evaluate_vertex(
          f.generated.graph, f.blockmodel, view, v,
          f.blockmodel.block_size(f.blockmodel.block_of(v)), 3.0,
          rngs.stream(0));
      if (result.moved) f.blockmodel.move_vertex(f.generated.graph, v, result.to);
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SerialMhPass);

void BM_RebuildBlockmodel(benchmark::State& state) {
  auto f = Fixture(static_cast<Vertex>(state.range(0)), 16,
                   static_cast<hsbp::graph::EdgeCount>(state.range(0)) * 10);
  const auto assignment = f.blockmodel.copy_assignment();
  for (auto _ : state) {
    f.blockmodel.rebuild(f.generated.graph, assignment);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_RebuildBlockmodel)->Arg(500)->Arg(2000)->Arg(8000);

void BM_FullMdl(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsbp::blockmodel::mdl(f.blockmodel, f.generated.graph.num_vertices(),
                              f.generated.graph.num_edges()));
  }
}
BENCHMARK(BM_FullMdl);

void BM_IdentityBlockmodel(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blockmodel::identity(f.generated.graph));
  }
}
BENCHMARK(BM_IdentityBlockmodel);

// ---- sparse vs dense backend (paper future work: reconstruction-
// friendly data structures). The dense backend's add() is a single
// indexed store; the sparse one hashes twice. The crossover argument:
// dense wins once C is small enough for C² cells to fit caches.

void BM_SparseMatrixFill(benchmark::State& state) {
  const auto blocks = static_cast<BlockId>(state.range(0));
  hsbp::util::Rng rng(7);
  std::vector<std::pair<BlockId, BlockId>> cells(20000);
  for (auto& [r, c] : cells) {
    r = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
    c = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
  }
  for (auto _ : state) {
    hsbp::blockmodel::DictTransposeMatrix m(blocks);
    for (const auto& [r, c] : cells) m.add(r, c, 1);
    benchmark::DoNotOptimize(m.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SparseMatrixFill)->Arg(16)->Arg(128)->Arg(1024);

void BM_DenseMatrixFill(benchmark::State& state) {
  const auto blocks = static_cast<BlockId>(state.range(0));
  hsbp::util::Rng rng(7);
  std::vector<std::pair<BlockId, BlockId>> cells(20000);
  for (auto& [r, c] : cells) {
    r = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
    c = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
  }
  for (auto _ : state) {
    hsbp::blockmodel::DenseMatrix m(blocks);
    for (const auto& [r, c] : cells) m.add(r, c, 1);
    benchmark::DoNotOptimize(m.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_DenseMatrixFill)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
