/// \file bm_kernels.cpp
/// \brief google-benchmark micro benches for the kernels every SBP
/// variant is built from: neighbor gathering, ΔMDL for moves and
/// merges, proposal drawing, Hastings correction, in-place vertex
/// moves, full-matrix rebuild, and MDL evaluation. These are the
/// numbers to watch when optimizing — the paper's future-work section
/// calls out rebuild cost and data-structure choice explicitly.
#include <benchmark/benchmark.h>

#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/dense_matrix.hpp"
#include "blockmodel/mdl.hpp"
#include "blockmodel/merge_delta.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "generator/dcsbm.hpp"
#include "sbp/hastings.hpp"
#include "sbp/proposal.hpp"
#include "util/rng.hpp"

namespace {

using hsbp::blockmodel::BlockId;
using hsbp::blockmodel::Blockmodel;
using hsbp::graph::Vertex;

struct Fixture {
  hsbp::generator::GeneratedGraph generated;
  Blockmodel blockmodel;

  explicit Fixture(Vertex vertices, std::int32_t communities,
                   hsbp::graph::EdgeCount edges) {
    hsbp::generator::DcsbmParams params;
    params.num_vertices = vertices;
    params.num_communities = communities;
    params.num_edges = edges;
    params.ratio_within_between = 3.0;
    params.seed = 1234;
    generated = hsbp::generator::generate_dcsbm(params);
    blockmodel = Blockmodel::from_assignment(
        generated.graph, generated.ground_truth, communities);
  }
};

Fixture& fixture() {
  static Fixture f(2000, 16, 20000);
  return f;
}

void BM_GatherNeighborBlocks(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(1);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    benchmark::DoNotOptimize(hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v));
  }
}
BENCHMARK(BM_GatherNeighborBlocks);

void BM_VertexMoveDelta(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(2);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    benchmark::DoNotOptimize(
        hsbp::blockmodel::vertex_move_delta(f.blockmodel, from, to, nb));
  }
}
BENCHMARK(BM_VertexMoveDelta);

void BM_ProposeBlock(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(3);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    benchmark::DoNotOptimize(hsbp::sbp::propose_block(
        f.blockmodel, nb, f.blockmodel.block_of(v), false, rng));
  }
}
BENCHMARK(BM_ProposeBlock);

void BM_HastingsCorrection(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(4);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    const auto nb = hsbp::blockmodel::gather_neighbor_blocks(
        f.generated.graph, f.blockmodel.assignment(), v);
    const auto delta =
        hsbp::blockmodel::vertex_move_delta(f.blockmodel, from, to, nb);
    benchmark::DoNotOptimize(
        hsbp::sbp::hastings_correction(f.blockmodel, nb, from, to, delta));
  }
}
BENCHMARK(BM_HastingsCorrection);

void BM_MoveVertexRoundTrip(benchmark::State& state) {
  auto f = Fixture(2000, 16, 20000);  // private copy: we mutate it
  hsbp::util::Rng rng(5);
  for (auto _ : state) {
    const auto v = static_cast<Vertex>(rng.uniform_int(2000));
    const BlockId from = f.blockmodel.block_of(v);
    const auto to =
        static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    if (f.blockmodel.block_size(from) <= 1) continue;
    f.blockmodel.move_vertex(f.generated.graph, v, to);
    f.blockmodel.move_vertex(f.generated.graph, v, from);
  }
}
BENCHMARK(BM_MoveVertexRoundTrip);

void BM_MergeDelta(benchmark::State& state) {
  auto& f = fixture();
  hsbp::util::Rng rng(6);
  for (auto _ : state) {
    const auto from = static_cast<BlockId>(rng.uniform_int(16));
    const auto to = static_cast<BlockId>((from + 1 + rng.uniform_int(15)) % 16);
    benchmark::DoNotOptimize(hsbp::blockmodel::merge_delta_mdl(
        f.blockmodel, from, to, f.generated.graph.num_vertices(),
        f.generated.graph.num_edges()));
  }
}
BENCHMARK(BM_MergeDelta);

void BM_RebuildBlockmodel(benchmark::State& state) {
  auto f = Fixture(static_cast<Vertex>(state.range(0)), 16,
                   static_cast<hsbp::graph::EdgeCount>(state.range(0)) * 10);
  const auto assignment = f.blockmodel.copy_assignment();
  for (auto _ : state) {
    f.blockmodel.rebuild(f.generated.graph, assignment);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_RebuildBlockmodel)->Arg(500)->Arg(2000)->Arg(8000);

void BM_FullMdl(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsbp::blockmodel::mdl(f.blockmodel, f.generated.graph.num_vertices(),
                              f.generated.graph.num_edges()));
  }
}
BENCHMARK(BM_FullMdl);

void BM_IdentityBlockmodel(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blockmodel::identity(f.generated.graph));
  }
}
BENCHMARK(BM_IdentityBlockmodel);

// ---- sparse vs dense backend (paper future work: reconstruction-
// friendly data structures). The dense backend's add() is a single
// indexed store; the sparse one hashes twice. The crossover argument:
// dense wins once C is small enough for C² cells to fit caches.

void BM_SparseMatrixFill(benchmark::State& state) {
  const auto blocks = static_cast<BlockId>(state.range(0));
  hsbp::util::Rng rng(7);
  std::vector<std::pair<BlockId, BlockId>> cells(20000);
  for (auto& [r, c] : cells) {
    r = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
    c = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
  }
  for (auto _ : state) {
    hsbp::blockmodel::DictTransposeMatrix m(blocks);
    for (const auto& [r, c] : cells) m.add(r, c, 1);
    benchmark::DoNotOptimize(m.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SparseMatrixFill)->Arg(16)->Arg(128)->Arg(1024);

void BM_DenseMatrixFill(benchmark::State& state) {
  const auto blocks = static_cast<BlockId>(state.range(0));
  hsbp::util::Rng rng(7);
  std::vector<std::pair<BlockId, BlockId>> cells(20000);
  for (auto& [r, c] : cells) {
    r = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
    c = static_cast<BlockId>(rng.uniform_int(static_cast<std::uint64_t>(blocks)));
  }
  for (auto _ : state) {
    hsbp::blockmodel::DenseMatrix m(blocks);
    for (const auto& [r, c] : cells) m.add(r, c, 1);
    benchmark::DoNotOptimize(m.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_DenseMatrixFill)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
