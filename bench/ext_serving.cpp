/// \file ext_serving.cpp
/// \brief Extension experiment: concurrent query load against `hsbpd`
/// while a streaming re-fit storm runs.
///
/// The scenario the serve subsystem exists for: N client threads issue
/// membership/modularity/epoch queries non-stop while the main thread
/// INGESTs edge batches and the daemon's background scheduler re-fits
/// and republishes. Snapshot isolation means query latency should not
/// collapse during a refit — this bench measures exactly that: query
/// throughput, p50/p99 latency, and refit wall time, emitted as one
/// JSON object on stdout.
///
/// Modes:
///   (default)        in-process daemon on a private Unix socket
///   --socket PATH    target an externally started `hsbp serve` daemon
///                    (pair with --graph NAME; used by the tier-1 smoke
///                    stage); --shutdown sends SHUTDOWN when done
///   HSBP_BENCH_SMOKE=1  shrink the workload to seconds — CI smoke mode
///
/// Overload scenario (--overload N, default 2 in smoke mode, else 0):
/// the bench assumes the daemon's connection cap is clients + 1 (the
/// storm's clients plus the control connection fill it exactly — the
/// in-process daemon is configured that way automatically; an external
/// one must be started with `--max-sessions <clients+1>`). While the
/// storm holds every slot, N excess probe connections must each be
/// shed with `ERR busy retry-after <ms>`, and one retrying client
/// (Client::request_retry) must ride out the busy period and succeed
/// once the storm releases its slots — busy/retry covered
/// deterministically, no timing luck involved. The daemon's HEALTH
/// counters (shed/timeouts/active_sessions/queue_depth) land in the
/// JSON output.
///
/// Flags: --clients N (>= 4 enforced), --batches B, --seed S,
/// --threads T, --graph NAME, --overload N, --shutdown.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "generator/dcsbm.hpp"
#include "graph/graph.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct ClientStats {
  std::vector<double> latencies_us;
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// One query thread: cycles through the read verbs until told to stop,
/// timing each request round-trip.
void query_loop(const std::string& socket_path, const std::string& graph,
                std::int32_t num_vertices, const std::atomic<bool>& running,
                ClientStats& stats) {
  hsbp::serve::Client client =
      hsbp::serve::Client::connect_unix(socket_path);
  const std::string verbs[4] = {
      "MEMBER " + graph + " ",  // + vertex id appended per request
      "MODULARITY " + graph,
      "EPOCH " + graph,
      "INFO " + graph,
  };
  std::uint64_t i = 0;
  while (running.load(std::memory_order_relaxed)) {
    std::string payload = verbs[i % 4];
    if (i % 4 == 0) {
      payload += std::to_string(static_cast<std::int32_t>(
          i % static_cast<std::uint64_t>(num_vertices)));
    }
    const auto t0 = Clock::now();
    const auto reply = client.request(payload);
    const auto t1 = Clock::now();
    if (!reply.has_value()) break;  // daemon hung up — stop counting
    stats.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    ++stats.queries;
    if (!hsbp::serve::is_ok(*reply)) ++stats.errors;
    ++i;
  }
}

/// Polls `payload` until the named `field=` token reaches `target` (or
/// the deadline passes). Returns the last value observed.
std::uint64_t await_field(hsbp::serve::Client& client,
                          const std::string& payload,
                          const std::string& field, std::uint64_t target,
                          double timeout_seconds) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  const std::string key = field + "=";
  std::uint64_t last = 0;
  while (Clock::now() < deadline) {
    const auto reply = client.request(payload);
    if (!reply.has_value()) break;
    const auto pos = reply->find(key);
    if (pos != std::string::npos) {
      last = std::strtoull(reply->c_str() + pos + key.size(), nullptr, 10);
      if (last >= target) return last;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return last;
}

/// Reply shape: "OK vertices=... edges=... blocks=... epoch=... mdl=...".
std::uint64_t await_info_field(hsbp::serve::Client& client,
                               const std::string& graph,
                               const std::string& field,
                               std::uint64_t target,
                               double timeout_seconds) {
  return await_field(client, "INFO " + graph, field, target,
                     timeout_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const hsbp::util::Args args(argc, argv);
  const bool smoke = []() {
    const char* env = std::getenv("HSBP_BENCH_SMOKE");
    return env != nullptr && std::string(env) == "1";
  }();

  const int clients =
      std::max(4, static_cast<int>(args.get_int("clients", 4)));
  const int batches =
      static_cast<int>(args.get_int("batches", smoke ? 2 : 4));
  const int overload =
      static_cast<int>(args.get_int("overload", smoke ? 2 : 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::string graph_name = args.get_string("graph", "bench");
  std::string socket_path = args.get_string("socket", "");
  const bool external = !socket_path.empty();
  const bool send_shutdown = args.get_bool("shutdown", false);

  // Workload: a DCSBM graph with the tail of its edge list held back as
  // the ingest stream; each batch also attaches one brand-new vertex so
  // refits exercise extend_assignment, not just edge updates.
  hsbp::generator::DcsbmParams params;
  params.num_vertices = smoke ? 300 : 1500;
  params.num_communities = smoke ? 6 : 12;
  params.num_edges = smoke ? 2400 : 15000;
  params.ratio_within_between = 4.0;
  params.seed = seed;
  const auto generated = hsbp::generator::generate_dcsbm(params);

  std::vector<hsbp::graph::Edge> edges = generated.graph.edges();
  const std::size_t held_back =
      std::min(edges.size() / 5,
               static_cast<std::size_t>(batches) * (smoke ? 40u : 400u));
  const std::size_t base_count = edges.size() - held_back;
  const auto base_graph = hsbp::graph::Graph::from_edges(
      generated.graph.num_vertices(),
      std::span<const hsbp::graph::Edge>(edges.data(), base_count));

  std::vector<std::vector<hsbp::graph::Edge>> batch_edges(
      static_cast<std::size_t>(batches));
  for (std::size_t i = base_count; i < edges.size(); ++i) {
    batch_edges[(i - base_count) % batch_edges.size()].push_back(edges[i]);
  }
  // One brand-new vertex per batch is attached below, once the served
  // graph's size is known — against an external daemon (--socket) the
  // fresh ids must land past *its* vertex count, not the generator's.

  // Daemon: in-process unless --socket points at an external one.
  std::unique_ptr<hsbp::serve::Server> server;
  if (!external) {
    socket_path = "/tmp/hsbp_ext_serving_" +
                  std::to_string(static_cast<long>(::getpid())) + ".sock";
    hsbp::serve::ServeOptions options;
    options.socket_path = socket_path;
    options.refit.base.seed = seed;
    options.refit.base.num_threads =
        static_cast<int>(args.get_int("threads", 0));
    options.refit.base.variant = hsbp::sbp::Variant::Hybrid;
    if (overload > 0) {
      // Cap = storm clients + the control connection: the storm fills
      // every slot, so each overload probe is shed deterministically.
      options.max_sessions = clients + 1;
    }
    server = std::make_unique<hsbp::serve::Server>(options);
    server->add_graph(graph_name, base_graph);
    std::fprintf(stderr, "fitting initial partition...\n");
    server->start();
  }

  hsbp::serve::Client control =
      hsbp::serve::Client::connect_unix(socket_path);
  const std::uint64_t epoch0 =
      await_info_field(control, graph_name, "epoch", 1, smoke ? 30.0 : 120.0);
  // Query-able vertex range comes from the daemon, not the local
  // generator: an external daemon (--socket) serves its own graph,
  // whose size has nothing to do with the DCSBM built above for the
  // ingest stream. MEMBER on an id past the served graph is an ERR.
  const auto num_vertices = static_cast<std::int32_t>(
      await_info_field(control, graph_name, "vertices", 1, 5.0));
  if (num_vertices <= 0) {
    std::fprintf(stderr, "FAIL: daemon never reported a vertex count\n");
    return 1;
  }
  std::fprintf(stderr,
               "daemon ready at epoch %llu (%d vertices); starting %d "
               "clients\n",
               static_cast<unsigned long long>(epoch0), num_vertices,
               clients);

  // Fresh ids start past both the served graph and the generated edge
  // stream, so every batch grows the daemon's vertex set by exactly one
  // — that growth is the coalescing-proof "all batches published"
  // signal awaited after the storm.
  const auto fresh_base = std::max(static_cast<hsbp::graph::Vertex>(num_vertices),
                                   generated.graph.num_vertices());
  for (std::size_t b = 0; b < batch_edges.size(); ++b) {
    batch_edges[b].emplace_back(
        fresh_base + static_cast<hsbp::graph::Vertex>(b),
        static_cast<hsbp::graph::Vertex>(
            (b * 17) % static_cast<std::size_t>(
                           generated.graph.num_vertices())));
  }

  std::atomic<bool> running{true};
  std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(query_loop, std::cref(socket_path),
                         std::cref(graph_name), num_vertices,
                         std::cref(running),
                         std::ref(stats[static_cast<std::size_t>(c)]));
  }

  // Overload scenario: once the storm holds every session slot, each
  // excess connection must be shed with `ERR busy retry-after <ms>`,
  // and a retrying client must ride the busy period out.
  int shed_observed = 0;
  int retry_after_hint = -1;
  std::thread retry_prober;
  std::optional<std::string> retry_reply;
  int retry_attempts_used = 0;
  if (overload > 0) {
    const auto expected_active = static_cast<std::uint64_t>(clients) + 1;
    const std::uint64_t active = await_field(
        control, "HEALTH", "active_sessions", expected_active, 30.0);
    if (active < expected_active) {
      std::fprintf(stderr,
                   "FAIL: %llu active sessions before the overload "
                   "probes (wanted %llu — was the daemon started with "
                   "--max-sessions %d?)\n",
                   static_cast<unsigned long long>(active),
                   static_cast<unsigned long long>(expected_active),
                   clients + 1);
      running.store(false);
      for (auto& t : threads) t.join();
      return 1;
    }
    for (int p = 0; p < overload; ++p) {
      try {
        hsbp::serve::Client probe =
            hsbp::serve::Client::connect_unix(socket_path);
        const auto reply = probe.request("PING", /*timeout_ms=*/10000);
        if (reply.has_value() &&
            hsbp::serve::is_busy(*reply, &retry_after_hint)) {
          ++shed_observed;
        } else {
          std::fprintf(stderr, "overload probe %d was NOT shed: %s\n", p,
                       reply.has_value() ? reply->c_str() : "(hangup)");
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "overload probe %d: %s\n", p, e.what());
      }
    }
    // The retrying client: shed (with the server's retry-after pacing
    // its attempts) for as long as the storm runs, then OK the moment
    // a slot frees — joined after the query threads release theirs.
    retry_prober = std::thread([&socket_path, &retry_reply,
                                &retry_attempts_used] {
      try {
        hsbp::serve::Client prober =
            hsbp::serve::Client::connect_unix(socket_path);
        hsbp::serve::RetryPolicy policy;
        policy.attempts = 4000;
        policy.timeout_ms = 10000;
        policy.backoff_ms = 25;
        retry_reply =
            prober.request_retry("PING", policy, &retry_attempts_used);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "retry prober: %s\n", e.what());
      }
    });
  }

  // The refit storm: ingest every batch, then wait until the scheduler
  // has published them all. Queries keep hammering the whole time.
  const auto storm_start = Clock::now();
  for (const auto& batch : batch_edges) {
    const auto reply =
        control.request(hsbp::serve::format_ingest(graph_name, batch));
    if (!reply.has_value() || !hsbp::serve::is_ok(*reply)) {
      std::fprintf(stderr, "INGEST failed: %s\n",
                   reply.has_value() ? reply->c_str() : "(hangup)");
      running.store(false);
      for (auto& t : threads) t.join();
      if (retry_prober.joinable()) retry_prober.join();
      return 1;
    }
  }
  // "All batches published" == the last batch's fresh vertex is visible.
  // The scheduler coalesces every pending batch into one refit, so the
  // epoch may advance by fewer steps than batches were ingested — the
  // vertex count is the coalescing-proof completion signal (each batch
  // attaches exactly one brand-new vertex).
  const auto target_vertices = static_cast<std::uint64_t>(fresh_base) +
                               static_cast<std::uint64_t>(batches);
  const std::uint64_t final_vertices =
      await_info_field(control, graph_name, "vertices", target_vertices,
                       smoke ? 60.0 : 600.0);
  const std::uint64_t final_epoch =
      await_info_field(control, graph_name, "epoch", 0, 5.0);
  const double refit_wall_seconds =
      std::chrono::duration<double>(Clock::now() - storm_start).count();

  running.store(false);
  for (auto& t : threads) t.join();
  if (retry_prober.joinable()) retry_prober.join();
  const double query_seconds = refit_wall_seconds;  // same window

  // The daemon's own overload ledger, straight from HEALTH.
  const auto field_of = [](const std::string& reply, const char* key) {
    const auto pos = reply.find(key);
    return pos == std::string::npos
               ? std::uint64_t{0}
               : std::strtoull(reply.c_str() + pos + std::strlen(key),
                               nullptr, 10);
  };
  std::uint64_t daemon_shed = 0;
  std::uint64_t daemon_timeouts = 0;
  std::uint64_t daemon_queue_depth = 0;
  if (const auto health = control.request("HEALTH");
      health.has_value() && hsbp::serve::is_ok(*health)) {
    daemon_shed = field_of(*health, "shed=");
    daemon_timeouts = field_of(*health, "timeouts=");
    daemon_queue_depth = field_of(*health, "queue_depth=");
  }

  std::vector<double> all_latencies;
  std::uint64_t total_queries = 0;
  std::uint64_t total_errors = 0;
  for (const auto& s : stats) {
    all_latencies.insert(all_latencies.end(), s.latencies_us.begin(),
                         s.latencies_us.end());
    total_queries += s.queries;
    total_errors += s.errors;
  }
  std::sort(all_latencies.begin(), all_latencies.end());

  const bool refits_done = final_vertices >= target_vertices;
  if (send_shutdown) {
    const auto reply = control.request("SHUTDOWN");
    std::fprintf(stderr, "SHUTDOWN -> %s\n",
                 reply.has_value() ? reply->c_str() : "(hangup)");
  }
  control.close();
  if (server) server->stop();

  std::printf(
      "{\"bench\": \"ext_serving\", \"smoke\": %s, \"clients\": %d, "
      "\"queries\": %llu, \"errors\": %llu, \"query_seconds\": %.3f, "
      "\"throughput_qps\": %.1f, \"latency_p50_us\": %.1f, "
      "\"latency_p99_us\": %.1f, \"ingest_batches\": %d, "
      "\"refit_wall_seconds\": %.3f, \"initial_epoch\": %llu, "
      "\"final_epoch\": %llu, \"refits_completed\": %s, "
      "\"overload_probes\": %d, \"shed_observed\": %d, "
      "\"retry_after_hint_ms\": %d, \"retry_attempts_used\": %d, "
      "\"daemon_shed\": %llu, \"daemon_timeouts\": %llu, "
      "\"daemon_queue_depth\": %llu}\n",
      smoke ? "true" : "false", clients,
      static_cast<unsigned long long>(total_queries),
      static_cast<unsigned long long>(total_errors), query_seconds,
      query_seconds > 0
          ? static_cast<double>(total_queries) / query_seconds
          : 0.0,
      percentile(all_latencies, 0.50), percentile(all_latencies, 0.99),
      batches, refit_wall_seconds,
      static_cast<unsigned long long>(epoch0),
      static_cast<unsigned long long>(final_epoch),
      refits_done ? "true" : "false", overload, shed_observed,
      retry_after_hint, retry_attempts_used,
      static_cast<unsigned long long>(daemon_shed),
      static_cast<unsigned long long>(daemon_timeouts),
      static_cast<unsigned long long>(daemon_queue_depth));

  if (!refits_done) {
    std::fprintf(stderr, "FAIL: refits did not complete (%llu vertices "
                 "visible, wanted %llu)\n",
                 static_cast<unsigned long long>(final_vertices),
                 static_cast<unsigned long long>(target_vertices));
    return 1;
  }
  if (total_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu ERR replies during the storm\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (overload > 0) {
    if (shed_observed != overload) {
      std::fprintf(stderr,
                   "FAIL: %d of %d overload probes were shed with ERR "
                   "busy\n",
                   shed_observed, overload);
      return 1;
    }
    if (!retry_reply.has_value() || *retry_reply != "OK pong") {
      std::fprintf(
          stderr, "FAIL: retrying client never got through: %s\n",
          retry_reply.has_value() ? retry_reply->c_str() : "(hangup)");
      return 1;
    }
    if (daemon_shed < static_cast<std::uint64_t>(overload)) {
      std::fprintf(stderr,
                   "FAIL: daemon HEALTH reports shed=%llu, below the %d "
                   "probes it refused\n",
                   static_cast<unsigned long long>(daemon_shed),
                   overload);
      return 1;
    }
  }
  return 0;
}
