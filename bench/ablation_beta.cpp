/// \file ablation_beta.cpp
/// \brief Sweep of the inverse temperature β in the acceptance rule
/// min(1, e^{−βΔS}·H). The reference implementation fixes β = 3
/// ("exploitation vs exploration"); this ablation shows why: small β
/// accepts too many worsening moves to converge tightly, large β gets
/// greedy and risks local minima.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 3);
  hsbp::eval::print_banner("Ablation: inverse temperature beta",
                           options.scale, options.runs, std::cout);

  hsbp::generator::DcsbmParams params;
  params.num_vertices = 600;
  params.num_communities = 8;
  params.num_edges = 6000;
  params.ratio_within_between = 3.0;
  params.seed = options.seed;
  auto generated = hsbp::generator::generate_dcsbm(params);
  generated.name = "beta-sweep";

  hsbp::util::Table table({"beta", "NMI", "MDL_norm", "acceptance_rate",
                           "mcmc_iters", "mcmc_s"});
  for (const double beta : {0.5, 1.0, 3.0, 5.0, 10.0, 30.0}) {
    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    config.beta = beta;
    const auto row = hsbp::eval::run_experiment(
        generated, hsbp::sbp::Variant::Metropolis, config, options.runs);
    // Recover the acceptance rate from one extra single run's stats.
    hsbp::sbp::SbpConfig probe = config;
    probe.seed = options.seed + 99;
    const auto one = hsbp::sbp::run(generated.graph, probe);
    const double acceptance =
        one.stats.proposals > 0
            ? static_cast<double>(one.stats.accepted_moves) /
                  static_cast<double>(one.stats.proposals)
            : 0.0;
    table.row()
        .cell(beta, 1)
        .cell(row.nmi, 3)
        .cell(row.mdl_norm, 3)
        .cell(acceptance, 3)
        .cell(row.mcmc_iterations)
        .cell(row.mcmc_seconds, 3);
    std::fprintf(stderr, "  beta=%.1f done\n", beta);
  }
  table.print(std::cout);
  std::cout << "expected shape: acceptance rate falls as beta rises; "
               "small beta random-walks (many passes, lower NMI) and "
               "quality plateaus from beta >= 1, covering the reference "
               "beta = 3.\n";
  return 0;
}
