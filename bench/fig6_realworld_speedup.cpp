/// \file fig6_realworld_speedup.cpp
/// \brief Paper Fig. 6: MCMC-phase speedup of H-SBP over SBP on the
/// real-world graphs (paper: up to 5.6× on web-BerkStan, slowdown only
/// on barth5 where H-SBP's iteration count explodes).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.002, 2);
  hsbp::eval::print_banner(
      "Fig. 6: MCMC-phase speedup on real-world graphs (H-SBP vs SBP)",
      options.scale, options.runs, std::cout);

  const auto entries = hsbp::generator::realworld_surrogate_suite(
      options.scale, options.seed);
  const auto rows = hsbp::bench::run_suite(
      entries,
      {hsbp::sbp::Variant::Metropolis, hsbp::sbp::Variant::Hybrid}, options);

  hsbp::eval::print_speedup_table(rows, std::cout);
  std::cout << "paper shape: H-SBP >= 1x on all graphs except barth5; "
               "overall speedup 0.5x (barth5) to 4.2x (higgs-twitter).\n";
  hsbp::bench::maybe_write_csv(options, rows);
  return 0;
}
