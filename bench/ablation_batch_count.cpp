/// \file ablation_batch_count.cpp
/// \brief Evaluates the paper's proposed future-work variant: batched
/// A-SBP (B-SBP). Sweeping the batches-per-pass K interpolates between
/// A-SBP (K = 1, maximum staleness, fastest pass) and near-sequential
/// consistency (large K, staleness 1/K of a pass, more rebuilds). The
/// paper conjectures batching "could provide similar benefits to H-SBP
/// without the need for synchronous processing" — this bench tests
/// exactly that on a weak-structure graph where A-SBP struggles.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 1.0, 3);
  hsbp::eval::print_banner("Ablation: B-SBP batches per pass",
                           options.scale, options.runs, std::cout);

  hsbp::generator::DcsbmParams params;
  params.num_vertices = 600;
  params.num_communities = 8;
  params.num_edges = 5000;
  params.ratio_within_between = 2.0;  // weak structure: A-SBP's hard regime
  params.degree_exponent = 2.1;
  params.max_degree = 80;
  params.seed = options.seed;
  auto generated = hsbp::generator::generate_dcsbm(params);
  generated.name = "weak-structure";

  hsbp::util::Table table({"variant", "batches", "NMI", "MDL_norm",
                           "mcmc_s", "mcmc_iters"});

  // Reference points: baseline SBP and H-SBP.
  for (const auto variant :
       {hsbp::sbp::Variant::Metropolis, hsbp::sbp::Variant::Hybrid}) {
    const auto row = hsbp::eval::run_experiment(
        generated, variant, hsbp::bench::base_config(options), options.runs);
    table.row()
        .cell(row.algorithm)
        .cell(std::string("-"))
        .cell(row.nmi, 3)
        .cell(row.mdl_norm, 3)
        .cell(row.mcmc_seconds, 3)
        .cell(row.mcmc_iterations);
    std::fprintf(stderr, "  %s done\n", row.algorithm.c_str());
  }

  for (const int batches : {1, 2, 4, 8, 16}) {
    hsbp::sbp::SbpConfig config = hsbp::bench::base_config(options);
    config.variant = hsbp::sbp::Variant::BatchedGibbs;
    config.batch_count = batches;
    const auto row = hsbp::eval::run_experiment(
        generated, hsbp::sbp::Variant::BatchedGibbs, config, options.runs);
    table.row()
        .cell(row.algorithm)
        .cell(static_cast<std::int64_t>(batches))
        .cell(row.nmi, 3)
        .cell(row.mdl_norm, 3)
        .cell(row.mcmc_seconds, 3)
        .cell(row.mcmc_iterations);
    std::fprintf(stderr, "  B-SBP K=%d done\n", batches);
  }
  table.print(std::cout);
  std::cout << "expected shape: quality rises from the K=1 (A-SBP) level "
               "toward SBP/H-SBP as K grows, at increasing rebuild cost "
               "per pass.\n";
  return 0;
}
