/// \file table2_realworld_suite.cpp
/// \brief Paper Table 2: the 14 SuiteSparse real-world graphs. This
/// environment is offline, so the harness generates DCSBM *surrogates*
/// matched to each dataset's published size and degree skew (DESIGN.md
/// §5); this bench prints the correspondence. Users with the original
/// .mtx files run them through examples/detect_communities instead.
#include <iostream>

#include "bench_common.hpp"
#include "graph/degree.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto options = hsbp::bench::parse_options(argc, argv, 0.002, 1);
  hsbp::eval::print_banner("Table 2: real-world graph surrogates",
                           options.scale, options.runs, std::cout);

  hsbp::util::Table table({"ID", "paper_V", "paper_E", "V", "E",
                           "surrogate_r", "max_deg", "mean_deg"});
  for (const auto& entry : hsbp::generator::realworld_surrogate_suite(
           options.scale, options.seed)) {
    if (!options.only.empty() && entry.id != options.only) continue;
    const auto generated = hsbp::generator::generate(entry);
    const auto degrees = hsbp::graph::degree_sequence(generated.graph);
    hsbp::graph::EdgeCount max_degree = 0;
    for (const auto d : degrees) max_degree = std::max(max_degree, d);
    const double mean_degree =
        2.0 * static_cast<double>(generated.graph.num_edges()) /
        static_cast<double>(generated.graph.num_vertices());
    table.row()
        .cell(entry.id)
        .cell(static_cast<std::int64_t>(entry.paper_vertices))
        .cell(entry.paper_edges)
        .cell(static_cast<std::int64_t>(generated.graph.num_vertices()))
        .cell(generated.graph.num_edges())
        .cell(entry.params.ratio_within_between, 2)
        .cell(max_degree)
        .cell(mean_degree, 1);
  }
  table.print(std::cout);
  std::cout << "note: surrogates preserve each dataset's V/E/degree-skew; "
               "the originals load via examples/detect_communities.\n";
  return 0;
}
